(* The checking daemon, end to end: the LRU + single-flight verdict
   cache, the wire-request grammar, the cache-key discipline, and the
   socket server.

   The load-bearing property is byte-identity — a daemon response must
   be byte-for-byte the [--json] report of the equivalent one-shot run,
   whether computed fresh, answered from the verdict cache, or
   assembled from a shared exploration two-phase budget. The key suite
   is its dual: any input that can change a verdict (workload parameter,
   restriction, engine knob) must change the cache key, while spellings
   that cannot (por=on under default POR, rw versions sharing an
   exploration) must collapse onto one line. *)

module Cache = Gem_check.Cache
module Server = Gem_check.Server
module Faults = Gem_check.Faults
module Budget = Gem_check.Budget
module Formula = Gem_logic.Formula
module Rw_prob = Gem_problems.Readers_writers
module Explore = Gem_lang.Explore
module R = Gem_syntax.Request
module Runner = Gem_daemon.Runner
module Handler = Gem_daemon.Handler
module Client = Gem_daemon.Client

let check = Alcotest.check

let find_sub hay needle =
  let nl = String.length needle and ol = String.length hay in
  let rec go i =
    if i + nl > ol then None
    else if String.sub hay i nl = needle then Some i
    else go (i + 1)
  in
  go 0

let contains hay needle = find_sub hay needle <> None

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let get c k = fst (Cache.find_or_compute c k (fun () -> "v:" ^ k))

let test_cache_miss_then_hit () =
  let c = Cache.create ~telemetry:false ~capacity:4 () in
  let computes = ref 0 in
  let f () =
    incr computes;
    "value"
  in
  let v1, p1 = Cache.find_or_compute c "k" f in
  let v2, p2 = Cache.find_or_compute c "k" f in
  check Alcotest.string "first computes" "value" v1;
  check Alcotest.string "second reuses" "value" v2;
  check Alcotest.string "first is a miss" "miss" (Cache.provenance_name p1);
  check Alcotest.string "second is a hit" "hit" (Cache.provenance_name p2);
  check Alcotest.int "computed once" 1 !computes

let test_cache_lru_eviction () =
  let c = Cache.create ~telemetry:false ~capacity:2 () in
  ignore (get c "a");
  ignore (get c "b");
  (* Touch [a] so [b] is now least recently used. *)
  check (Alcotest.option Alcotest.string) "peek bumps" (Some "v:a")
    (Cache.find c "a");
  ignore (get c "c");
  check (Alcotest.option Alcotest.string) "a retained" (Some "v:a")
    (Cache.find c "a");
  check (Alcotest.option Alcotest.string) "b evicted" None (Cache.find c "b");
  check (Alcotest.option Alcotest.string) "c resident" (Some "v:c")
    (Cache.find c "c")

let test_cache_capacity_bound () =
  let c = Cache.create ~telemetry:false ~capacity:3 () in
  for i = 1 to 10 do
    ignore (get c (string_of_int i))
  done;
  let s = Cache.stats c in
  check Alcotest.int "entries bounded" 3 s.Cache.entries;
  check Alcotest.int "evictions counted" 7 s.Cache.evictions;
  check Alcotest.int "misses counted" 10 s.Cache.misses;
  match Cache.create ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | (_ : string Cache.t) -> Alcotest.fail "capacity 0 accepted"

let test_cache_remove_clear () =
  let c = Cache.create ~telemetry:false ~capacity:4 () in
  ignore (get c "a");
  ignore (get c "b");
  Cache.remove c "a";
  check (Alcotest.option Alcotest.string) "removed" None (Cache.find c "a");
  check (Alcotest.option Alcotest.string) "others kept" (Some "v:b")
    (Cache.find c "b");
  Cache.clear c;
  check (Alcotest.option Alcotest.string) "cleared" None (Cache.find c "b");
  check Alcotest.int "empty" 0 (Cache.stats c).Cache.entries

let test_cache_single_flight () =
  let c = Cache.create ~telemetry:false ~capacity:4 () in
  let computes = Atomic.make 0 in
  let fetch () =
    Cache.find_or_compute c "k" (fun () ->
        Atomic.incr computes;
        Thread.delay 0.3;
        "value")
  in
  (* Leader first, then waiters while the compute is provably still in
     flight — each must coalesce onto the leader's slot. *)
  let results = Array.make 4 ("", Cache.Miss) in
  let leader = Thread.create (fun () -> results.(0) <- fetch ()) () in
  Thread.delay 0.05;
  let waiters =
    List.init 3 (fun i ->
        Thread.create (fun () -> results.(i + 1) <- fetch ()) ())
  in
  Thread.join leader;
  List.iter Thread.join waiters;
  check Alcotest.int "computed once" 1 (Atomic.get computes);
  Array.iter (fun (v, _) -> check Alcotest.string "same value" "value" v) results;
  let count p =
    Array.fold_left (fun n (_, q) -> if q = p then n + 1 else n) 0 results
  in
  check Alcotest.int "one miss" 1 (count Cache.Miss);
  check Alcotest.int "three coalesced" 3 (count Cache.Coalesced);
  let s = Cache.stats c in
  check Alcotest.int "stats coalesced" 3 s.Cache.coalesced;
  check Alcotest.int "stats misses" 1 s.Cache.misses

let test_cache_failure_propagates_and_is_not_cached () =
  let c = Cache.create ~telemetry:false ~capacity:4 () in
  (* A waiter coalesced onto a failing compute sees the same exception. *)
  let leader_failed = ref false and waiter_failed = ref false in
  let leader =
    Thread.create
      (fun () ->
        try
          ignore
            (Cache.find_or_compute c "k" (fun () ->
                 Thread.delay 0.3;
                 failwith "boom"))
        with Failure m when m = "boom" -> leader_failed := true)
      ()
  in
  Thread.delay 0.05;
  (try ignore (Cache.find_or_compute c "k" (fun () -> "unused"))
   with Failure m when m = "boom" -> waiter_failed := true);
  Thread.join leader;
  check Alcotest.bool "leader saw the failure" true !leader_failed;
  check Alcotest.bool "waiter saw the failure" true !waiter_failed;
  (* The failure must not poison the cache: the slot is gone and a later
     request recomputes successfully. *)
  check (Alcotest.option Alcotest.string) "failure not cached" None
    (Cache.find c "k");
  let v, p = Cache.find_or_compute c "k" (fun () -> "recovered") in
  check Alcotest.string "retry recomputes" "recovered" v;
  check Alcotest.string "retry is a miss" "miss" (Cache.provenance_name p)

(* ------------------------------------------------------------------ *)
(* Request grammar                                                     *)
(* ------------------------------------------------------------------ *)

let formula s =
  match Gem_syntax.Parser.parse_formula s with
  | Ok f -> f
  | Error e -> Alcotest.failf "formula %S: %s" s e

let roundtrip r =
  let line = R.to_line r in
  match R.parse line with
  | Ok r' -> check Alcotest.bool (line ^ " round-trips") true (r = r')
  | Error e -> Alcotest.failf "%s: %s" line e

let test_request_roundtrip () =
  roundtrip R.Ping;
  roundtrip R.Stats;
  roundtrip
    (R.Check
       {
         cmd = "rw";
         params = [ ("readers", "2"); ("writers", "1") ];
         restrict = None;
         engine = R.default_engine;
       });
  roundtrip
    (R.Check
       {
         cmd = "buffer";
         params = [ ("capacity", "1"); ("lang", "csp") ];
         restrict = Some (formula "false");
         engine =
           {
             R.reduction = Some R.Reduction_source;
             por = Some false;
             exact_keys = Some true;
             jobs = 4;
             batch = 128;
             bitstate_bits = Some 20;
             timeout = Some 1.5;
             max_configs = Some 100;
             max_runs = Some 5;
           };
       });
  (* Values that force quoting: spaces, quotes, backslashes, equals. *)
  List.iter
    (fun v ->
      roundtrip
        (R.Check
           {
             cmd = "rw";
             params = [ ("monitor", v) ];
             restrict = None;
             engine = R.default_engine;
           }))
    [ "a b"; "a\"b"; "a\\b"; "a=b"; "" ]

let test_request_canonical () =
  (* Workload keys come out sorted; defaults are omitted. *)
  match R.parse "check rw writers=1 readers=2 por=off jobs=1 batch=64" with
  | Error e -> Alcotest.fail e
  | Ok r ->
      check Alcotest.string "canonical line" "check rw readers=2 writers=1 por=off"
        (R.to_line r)

let test_request_errors () =
  let bad line expect =
    match R.parse line with
    | Ok _ -> Alcotest.failf "%S accepted" line
    | Error e ->
        check Alcotest.bool
          (Printf.sprintf "%S -> %s (got: %s)" line expect e)
          true (contains e expect)
  in
  bad "" "empty request";
  bad "   " "empty request";
  bad "frobnicate" "unknown verb";
  bad "ping now" "no arguments";
  bad "stats x=1" "no arguments";
  bad "x=1" "must start with a verb";
  bad "check" "command name";
  bad "check readers=1" "command name";
  bad "check b@d" "invalid command name";
  bad "check rw extra" "unexpected bare word";
  bad "check rw readers=1 readers=2" "duplicate key";
  bad "check rw restrict=true restrict=false" "duplicate key";
  bad "check rw por=maybe" "por expects on|off";
  bad "check rw reduction=turbo" "reduction expects none|sleep|source";
  bad "check rw keys=hash" "keys expects fp|exact";
  bad "check rw jobs=0" "positive integer";
  bad "check rw jobs=-1" "positive integer";
  bad "check rw jobs=abc" "positive integer";
  bad "check rw batch=0" "positive integer";
  bad "check rw bitstate=nope" "positive integer";
  bad "check rw timeout=0" "timeout expects positive seconds";
  bad "check rw timeout=-1" "timeout expects positive seconds";
  bad "check rw timeout=inf" "timeout expects positive seconds";
  bad "check rw max-configs=0" "positive integer";
  bad "check rw restrict=((" "restrict:";
  bad "check rw monitor=\"unterminated" "unterminated quoted value";
  bad "check rw monitor=\"bad \\x\"" "unknown escape";
  bad "check rw monitor=\"dangling\\" "dangling backslash";
  bad "check rw mon\"itor=x" "misplaced quote";
  (* Errors must be single-line so the daemon can embed them in a JSON
     header verbatim. *)
  List.iter
    (fun line ->
      match R.parse line with
      | Ok _ -> ()
      | Error e -> check Alcotest.bool "one-line error" false (String.contains e '\n'))
    [ ""; "frobnicate"; "check rw por=maybe"; "check rw restrict=((" ]

(* ------------------------------------------------------------------ *)
(* Cache keys                                                          *)
(* ------------------------------------------------------------------ *)

let rw ?(monitor = "paper") ?(version = Rw_prob.Readers_priority)
    ?(readers = 1) ?(writers = 1) () =
  Runner.Rw { monitor; version; readers; writers }

let deft = R.default_engine

(* The wire spelling of the environment-resolved reduction engine, plus
   one that differs from it — so the sensitivity and defaults-collapse
   assertions stay meaningful on CI legs that flip the default via
   GEM_REDUCTION / GEM_NO_POR (same idea as the [not (por_default ())]
   perturbations). *)
let default_reduction_wire =
  match Explore.resolve_reduction () with
  | Explore.No_reduction -> R.Reduction_none
  | Explore.Sleep_sets -> R.Reduction_sleep
  | Explore.Source_sets -> R.Reduction_source

let non_default_reduction =
  match Explore.resolve_reduction () with
  | Explore.Source_sets -> R.Reduction_sleep
  | _ -> R.Reduction_source

let test_verdict_key_sensitivity () =
  (* Every verdict-relevant input perturbs the key; the perturbed keys
     are also pairwise distinct (no two knobs collide). *)
  let key ?restrict ?(engine = deft) load =
    Runner.verdict_key load ~restrict engine
  in
  let base = key (rw ()) in
  let variants =
    [
      ("readers", key (rw ~readers:2 ()));
      ("writers", key (rw ~writers:2 ()));
      ("version", key (rw ~version:Rw_prob.Free_for_all ()));
      ("monitor", key (rw ~monitor:"buggy" ()));
      ("restrict", key ~restrict:(formula "false") (rw ()));
      ("restrict formula", key ~restrict:(formula "true") (rw ()));
      ( "por",
        (* por=on resolves to sleep, por=off to none; pick whichever
           differs from the resolved default engine. *)
        let flipped = Explore.resolve_reduction () = Explore.No_reduction in
        key ~engine:{ deft with R.por = Some flipped } (rw ()) );
      ( "reduction",
        key ~engine:{ deft with R.reduction = Some non_default_reduction }
          (rw ()) );
      ( "keys",
        key
          ~engine:
            {
              deft with
              R.exact_keys = Some (not (Explore.exact_keys_default ()));
            }
          (rw ()) );
      ("jobs", key ~engine:{ deft with R.jobs = 2 } (rw ()));
      ("batch", key ~engine:{ deft with R.batch = 128 } (rw ()));
      ("bitstate", key ~engine:{ deft with R.bitstate_bits = Some 16 } (rw ()));
      ( "bitstate bits",
        key ~engine:{ deft with R.bitstate_bits = Some 18 } (rw ()) );
      ("max-configs", key ~engine:{ deft with R.max_configs = Some 100 } (rw ()));
      ("max-runs", key ~engine:{ deft with R.max_runs = Some 5 } (rw ()));
      ( "command",
        key (Runner.Buffer
               {
                 lang = `Monitor;
                 capacity = 1;
                 producers = 1;
                 consumers = 1;
                 items = 2;
               }) );
    ]
  in
  List.iter
    (fun (what, k) ->
      check Alcotest.bool (what ^ " changes the key") false (String.equal base k))
    variants;
  let keys = base :: List.map snd variants in
  let distinct = List.sort_uniq compare keys in
  check Alcotest.int "all keys pairwise distinct" (List.length keys)
    (List.length distinct)

let test_verdict_key_resolves_defaults () =
  (* Spelling the environment default explicitly is the same request —
     it must land on the same cache line. *)
  let base = Runner.verdict_key (rw ()) ~restrict:None deft in
  (* por can only spell the none/sleep engines, so it re-spells the
     default exactly when the resolved default is one of those; under a
     source default (GEM_REDUCTION=source leg) an explicit por=on is a
     *different* engine — sleep — and must split the key. *)
  (match Explore.resolve_reduction () with
  | Explore.Sleep_sets ->
      check Alcotest.string "por=on collapses" base
        (Runner.verdict_key (rw ()) ~restrict:None
           { deft with R.por = Some true })
  | Explore.No_reduction ->
      check Alcotest.string "por=off collapses" base
        (Runner.verdict_key (rw ()) ~restrict:None
           { deft with R.por = Some false })
  | Explore.Source_sets ->
      check Alcotest.bool "por=on splits under a source default" false
        (String.equal base
           (Runner.verdict_key (rw ()) ~restrict:None
              { deft with R.por = Some true })));
  check Alcotest.string "keys=default collapses" base
    (Runner.verdict_key (rw ()) ~restrict:None
       { deft with R.exact_keys = Some (Explore.exact_keys_default ()) });
  (* Spelling the resolved default reduction explicitly is the default
     engine spelled out, and reduction=none is por=off spelled through
     the new key: both pairs are the same request and must share a
     cache line. *)
  check Alcotest.string "reduction=default collapses" base
    (Runner.verdict_key (rw ()) ~restrict:None
       { deft with R.reduction = Some default_reduction_wire });
  check Alcotest.string "reduction=none equals por=off"
    (Runner.verdict_key (rw ()) ~restrict:None
       { deft with R.por = Some false })
    (Runner.verdict_key (rw ()) ~restrict:None
       { deft with R.reduction = Some R.Reduction_none })

let test_explore_key_sharing () =
  (* The exploration key must ignore exactly the inputs that do not
     affect the exploration: the client restriction and rw's version
     (which only picks the problem spec's scheduling restriction). *)
  let base = Runner.explore_key (rw ()) deft in
  check Alcotest.string "versions share an exploration" base
    (Runner.explore_key (rw ~version:Rw_prob.Free_for_all ()) deft);
  check Alcotest.bool "verdict keys still separate versions" false
    (String.equal
       (Runner.verdict_key (rw ()) ~restrict:None deft)
       (Runner.verdict_key (rw ~version:Rw_prob.Free_for_all ()) ~restrict:None
          deft));
  (* Engine and program inputs do perturb it. *)
  List.iter
    (fun (what, k) ->
      check Alcotest.bool (what ^ " changes the exploration key") false
        (String.equal base k))
    [
      ("readers", Runner.explore_key (rw ~readers:2 ()) deft);
      ("monitor", Runner.explore_key (rw ~monitor:"buggy" ()) deft);
      ("jobs", Runner.explore_key (rw ()) { deft with R.jobs = 2 });
      ( "reduction",
        Runner.explore_key (rw ())
          { deft with R.reduction = Some non_default_reduction } );
      ( "bitstate",
        Runner.explore_key (rw ()) { deft with R.bitstate_bits = Some 16 } );
      ( "max-configs",
        Runner.explore_key (rw ()) { deft with R.max_configs = Some 100 } );
    ]

(* ------------------------------------------------------------------ *)
(* Byte-identity: daemon responses vs the one-shot pipeline            *)
(* ------------------------------------------------------------------ *)

let parse_check line =
  match R.parse line with
  | Ok (R.Check c) -> c
  | Ok _ -> Alcotest.failf "%S is not a check request" line
  | Error e -> Alcotest.failf "%S: %s" line e

(* The single-budget one-shot path — exactly what [gemcheck CMD --json]
   prints (modulo the trailing newline). *)
let one_shot line =
  let c = parse_check line in
  match Runner.of_request c with
  | Error e -> Alcotest.failf "of_request %S: %s" line e
  | Ok load ->
      let e = c.R.engine in
      let budget =
        Budget.make ?timeout:e.R.timeout ?max_configs:e.R.max_configs
          ?max_runs:e.R.max_runs ()
      in
      let r =
        Runner.run load (Runner.opts_of_engine load e) ~budget
          ~restrict:c.R.restrict
      in
      (r.Runner.exit_code, Runner.render_json ~command:(Runner.command_name load) r)

let handle_check h line =
  match Handler.handle h ("check " ^ line) with
  | [ header; body ] -> (header, body)
  | [ header ] -> Alcotest.failf "error reply for %S: %s" line header
  | ls -> Alcotest.failf "%S: %d response lines" line (List.length ls)

let provenance_of header =
  match Client.field_string header "cache" with
  | Some p -> p
  | None -> Alcotest.failf "no cache field in %s" header

let code_of header =
  match Client.field_int header "code" with
  | Some c -> c
  | None -> Alcotest.failf "no code field in %s" header

(* One grid cell: a cold daemon response, a warm (cached) one and the
   one-shot pipeline must agree byte-for-byte, across verified,
   falsified (monitor bug and client restriction) and inconclusive
   (undersized budget) verdicts. *)
let identity_cases =
  [
    "rw readers=1 writers=1";
    "rw monitor=no-exclusion readers=1 writers=1";
    "rw readers=1 writers=1 restrict=false";
    "rw readers=1 writers=1 max-configs=5";
    "rw readers=1 writers=1 version=free-for-all";
    (* The por and reduction spellings must differ from the resolved
       default engine, or their cold request here would land on the
       default case's cache line and be a hit already (the collapse
       itself is asserted in the keys suite); CI legs flip the default
       via GEM_NO_POR / GEM_REDUCTION. *)
    ("rw readers=1 writers=1 por="
    ^ match Explore.resolve_reduction () with
      | Explore.No_reduction -> "on"
      | _ -> "off");
    (* reduction=none is deliberately absent: under the default engine
       it collapses onto por=off's cache line. *)
    "rw readers=1 writers=1 reduction="
    ^ R.reduction_to_string non_default_reduction;
    ("rw readers=1 writers=1 keys="
    ^ if Explore.exact_keys_default () then "fp" else "exact");
    "buffer capacity=1 producers=1 consumers=1 items=2";
    "db sites=2";
    "life width=3 height=3 generations=1";
  ]

let test_byte_identity () =
  let h = Handler.create ~cache_size:32 () in
  List.iter
    (fun case ->
      let code, fresh = one_shot ("check " ^ case) in
      let cold_h, cold = handle_check h case in
      let warm_h, warm = handle_check h case in
      check Alcotest.string (case ^ ": cold is a miss") "miss" (provenance_of cold_h);
      check Alcotest.string (case ^ ": warm is a hit") "hit" (provenance_of warm_h);
      check Alcotest.string (case ^ ": cold == one-shot") fresh cold;
      check Alcotest.string (case ^ ": hit == one-shot") fresh warm;
      check Alcotest.int (case ^ ": cold code") code (code_of cold_h);
      check Alcotest.int (case ^ ": warm code") code (code_of warm_h))
    identity_cases

let test_shared_exploration_identity () =
  (* Same program, different restriction: the second request reuses the
     first's exploration (two-phase budget), and must still match the
     single-budget one-shot bytes. *)
  let h = Handler.create ~cache_size:8 () in
  let a = "rw readers=1 writers=1" in
  let b = "rw readers=1 writers=1 version=free-for-all" in
  let c = "rw readers=1 writers=1 restrict=false" in
  ignore (handle_check h a);
  let shared before = contains (Handler.stats_body h) before in
  ignore shared;
  List.iter
    (fun case ->
      let _, body = handle_check h case in
      check Alcotest.string (case ^ ": shared-exploration == one-shot")
        (snd (one_shot ("check " ^ case)))
        body)
    [ b; c ];
  (* All three verdicts, one exploration: the exploration cache saw one
     miss and two shared uses. *)
  let stats = Handler.stats_body h in
  match find_sub stats {|"explorations"|} with
  | None -> Alcotest.failf "no explorations in %s" stats
  | Some i ->
      let tail = String.sub stats i (String.length stats - i) in
      check (Alcotest.option Alcotest.int) "one exploration miss" (Some 1)
        (Client.field_int tail "misses");
      check (Alcotest.option Alcotest.int) "two explorations shared" (Some 2)
        (Client.field_int tail "hits")

(* ------------------------------------------------------------------ *)
(* Handler behaviour                                                   *)
(* ------------------------------------------------------------------ *)

let test_handler_ping_stats () =
  let h = Handler.create ~cache_size:4 () in
  (match Handler.handle h "ping" with
  | [ header ] ->
      check Alcotest.bool "pong" true (contains header {|"pong":true|});
      check Alcotest.int "code 0" 0 (code_of header)
  | _ -> Alcotest.fail "ping reply shape");
  match Handler.handle h "stats" with
  | [ _header; body ] ->
      check Alcotest.bool "verdict stats" true (contains body {|"verdicts"|});
      check Alcotest.bool "exploration stats" true (contains body {|"explorations"|})
  | _ -> Alcotest.fail "stats reply shape"

let test_handler_errors () =
  let h = Handler.create ~cache_size:4 () in
  let error_reply line expect =
    match Handler.handle h line with
    | [ header ] -> (
        check Alcotest.int (line ^ " is code 3") 3 (code_of header);
        match Client.field_string header "error" with
        | Some e ->
            check Alcotest.bool
              (Printf.sprintf "%S -> %s (got: %s)" line expect e)
              true (contains e expect)
        | None -> Alcotest.failf "no error field: %s" header)
    | ls -> Alcotest.failf "%S: %d lines" line (List.length ls)
  in
  error_reply "frobnicate" "parse:";
  error_reply "check rw por=maybe" "parse:";
  error_reply "check nosuch" "unknown command";
  error_reply "check rw bogus=1" "unknown key";
  error_reply "check db sites=2 restrict=true" "does not take a restrict";
  (* Junk must never crash the handler. *)
  List.iter
    (fun line -> ignore (Handler.handle h line))
    [ ""; String.make 4096 'x'; "check"; "\x00\x01\x02"; "check rw \"" ]

let test_handler_timeout_uncached () =
  (* Wall-clock-bounded requests bypass the cache: same request twice,
     both uncached, and the verdict cache never sees them. *)
  let h = Handler.create ~cache_size:4 () in
  let h1, b1 = handle_check h "db sites=2 timeout=60" in
  let h2, b2 = handle_check h "db sites=2 timeout=60" in
  check Alcotest.string "first uncached" "uncached" (provenance_of h1);
  check Alcotest.string "second uncached" "uncached" (provenance_of h2);
  check Alcotest.string "still deterministic here" b1 b2;
  let stats = Handler.stats_body h in
  match find_sub stats {|"verdicts"|} with
  | None -> Alcotest.fail "no verdict stats"
  | Some i ->
      let tail = String.sub stats i (String.length stats - i) in
      check (Alcotest.option Alcotest.int) "no verdict misses" (Some 0)
        (Client.field_int tail "misses")

let test_handler_survives_faults () =
  (* Under a GEM_FAULT alloc storm every frontier push is dropped (the
     alloc injection point lives in the resilient engine, so the request
     runs in bitstate mode): the daemon must answer with a reasoned
     degraded verdict — inconclusive with the memory-watermark reason,
     not the bitstate mode's usual collision-risk — and a fresh handler
     after disarming is back to normal. *)
  let faulted = "rw readers=1 writers=1 bitstate=16" in
  (match Faults.arm "1:1:alloc" with
  | Error e -> Alcotest.failf "arm: %s" e
  | Ok () -> ());
  Fun.protect ~finally:Faults.disarm (fun () ->
      let h = Handler.create ~cache_size:4 () in
      let header, body = handle_check h faulted in
      check Alcotest.int "degraded, not dead" 2 (code_of header);
      check Alcotest.bool "reasoned reply" true
        (contains body {|"status":"inconclusive"|});
      check Alcotest.bool "degradation reason reported" true
        (contains body "memory-watermark"));
  let h = Handler.create ~cache_size:4 () in
  let header, body = handle_check h faulted in
  check Alcotest.int "bitstate stays inconclusive" 2 (code_of header);
  check Alcotest.bool "collision risk after disarm" true
    (contains body "bitstate-collision-risk");
  let header, _ = handle_check h "rw readers=1 writers=1" in
  check Alcotest.int "recovers after disarm" 0 (code_of header)

(* ------------------------------------------------------------------ *)
(* Socket server, end to end                                           *)
(* ------------------------------------------------------------------ *)

let socket_ctr = ref 0

let with_server f =
  incr socket_ctr;
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gem-serve-%d-%d.sock" (Unix.getpid ()) !socket_ctr)
  in
  let h = Handler.create ~cache_size:8 () in
  let srv = Server.create ~socket () in
  let thread =
    Thread.create (fun () -> Server.run srv ~handler:(Handler.handle h)) ()
  in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop srv;
      Thread.join thread;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () -> f socket)

let request_ok socket line =
  match Client.request ~socket line with
  | Ok r -> r
  | Error e -> Alcotest.failf "%S: %s" line e

let test_server_roundtrip () =
  with_server (fun socket ->
      let pong = request_ok socket "ping" in
      check Alcotest.int "pong code" 0 pong.Client.code;
      check Alcotest.bool "pong header" true (contains pong.Client.header {|"pong"|});
      check Alcotest.int "pong body empty" 0 (List.length pong.Client.body);
      (* Cold then warm through the real transport. *)
      let cold = request_ok socket "check db sites=2" in
      let warm = request_ok socket "check db sites=2" in
      check Alcotest.string "miss over the wire" "miss" (provenance_of cold.Client.header);
      check Alcotest.string "hit over the wire" "hit" (provenance_of warm.Client.header);
      check Alcotest.bool "identical bodies" true (cold.Client.body = warm.Client.body);
      let stats = request_ok socket "stats" in
      check Alcotest.bool "stats over the wire" true
        (match stats.Client.body with
        | [ b ] -> contains b {|"verdicts"|}
        | _ -> false))

let test_server_concurrent_duplicates () =
  (* A stampede of identical requests: single-flight means exactly one
     computes; everyone gets the same bytes. *)
  with_server (fun socket ->
      let line = "check rwd readers=1 writers=1" in
      let results = Array.make 5 None in
      let threads =
        Array.to_list
          (Array.init 5 (fun i ->
               Thread.create
                 (fun () -> results.(i) <- Some (request_ok socket line))
                 ()))
      in
      List.iter Thread.join threads;
      let responses =
        Array.to_list results |> List.filter_map (fun r -> r)
      in
      check Alcotest.int "all answered" 5 (List.length responses);
      let provs =
        List.map (fun r -> provenance_of r.Client.header) responses
      in
      check Alcotest.int "exactly one computed" 1
        (List.length (List.filter (String.equal "miss") provs));
      List.iter
        (fun p -> check Alcotest.bool ("shared: " ^ p) true (p = "miss" || p = "hit" || p = "coalesced"))
        provs;
      let bodies = List.sort_uniq compare (List.map (fun r -> r.Client.body) responses) in
      check Alcotest.int "one distinct body" 1 (List.length bodies))

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let raw_send fd line =
  let msg = line ^ "\n" in
  ignore (Unix.write_substring fd msg 0 (String.length msg))

let test_server_survives_malformed_and_disconnect () =
  with_server (fun socket ->
      (* A malformed request answers with a JSON error and leaves the
         same connection usable. *)
      let fd = raw_connect socket in
      let ic = Unix.in_channel_of_descr fd in
      raw_send fd "utter garbage";
      let err = input_line ic in
      check Alcotest.int "error code" 3 (code_of err);
      check Alcotest.bool "parse error" true (contains err "parse:");
      raw_send fd "ping";
      check Alcotest.bool "connection survives" true (contains (input_line ic) {|"pong"|});
      Unix.close fd;
      (* Disconnecting mid-response kills only that connection. *)
      let fd2 = raw_connect socket in
      raw_send fd2 "check db sites=2";
      Unix.close fd2;
      Thread.delay 0.05;
      let pong = request_ok socket "ping" in
      check Alcotest.int "daemon alive after disconnect" 0 pong.Client.code)

let test_server_clean_shutdown () =
  incr socket_ctr;
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gem-serve-%d-%d.sock" (Unix.getpid ()) !socket_ctr)
  in
  let h = Handler.create ~cache_size:4 () in
  let srv = Server.create ~socket () in
  check Alcotest.bool "socket bound" true (Sys.file_exists socket);
  let thread =
    Thread.create (fun () -> Server.run srv ~handler:(Handler.handle h)) ()
  in
  ignore (request_ok socket "ping");
  Server.request_stop srv;
  Thread.join thread;
  check Alcotest.bool "run returned after stop" true (Server.stopping srv);
  check Alcotest.bool "socket unlinked" false (Sys.file_exists socket);
  (* A second server may immediately rebind the same path. *)
  let srv2 = Server.create ~socket () in
  let thread2 =
    Thread.create (fun () -> Server.run srv2 ~handler:(Handler.handle h)) ()
  in
  ignore (request_ok socket "ping");
  Server.request_stop srv2;
  Thread.join thread2;
  check Alcotest.bool "rebind cleans up too" false (Sys.file_exists socket)

(* ------------------------------------------------------------------ *)
(* Client header scanning                                              *)
(* ------------------------------------------------------------------ *)

let test_client_fields () =
  let header =
    {|{"serve":1,"command":"rw","cache":"hit","key":"ab12","elapsed_ms":0.170,"body":1,"code":2}|}
  in
  check (Alcotest.option Alcotest.int) "body" (Some 1)
    (Client.field_int header "body");
  check (Alcotest.option Alcotest.int) "code" (Some 2)
    (Client.field_int header "code");
  check (Alcotest.option Alcotest.string) "cache" (Some "hit")
    (Client.field_string header "cache");
  check (Alcotest.option Alcotest.string) "key" (Some "ab12")
    (Client.field_string header "key");
  check (Alcotest.option Alcotest.int) "missing int" None
    (Client.field_int header "nope");
  check (Alcotest.option Alcotest.string) "missing string" None
    (Client.field_string header "nope");
  check (Alcotest.option Alcotest.string) "int is not a string" None
    (Client.field_string header "body");
  check
    (Alcotest.option Alcotest.string)
    "escapes undone" (Some "a\"b\\c\nd")
    (Client.field_string {|{"error":"a\"b\\c\nd"}|} "error");
  check (Alcotest.option Alcotest.int) "negative" (Some (-3))
    (Client.field_int {|{"code":-3}|} "code")

let () =
  Alcotest.run "serve"
    [
      ( "cache",
        [
          Alcotest.test_case "miss then hit" `Quick test_cache_miss_then_hit;
          Alcotest.test_case "lru eviction order" `Quick test_cache_lru_eviction;
          Alcotest.test_case "capacity bound" `Quick test_cache_capacity_bound;
          Alcotest.test_case "remove and clear" `Quick test_cache_remove_clear;
          Alcotest.test_case "single-flight coalescing" `Quick
            test_cache_single_flight;
          Alcotest.test_case "failure propagates uncached" `Quick
            test_cache_failure_propagates_and_is_not_cached;
        ] );
      ( "request",
        [
          Alcotest.test_case "round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "canonical rendering" `Quick test_request_canonical;
          Alcotest.test_case "parse errors" `Quick test_request_errors;
        ] );
      ( "keys",
        [
          Alcotest.test_case "verdict key sensitivity" `Quick
            test_verdict_key_sensitivity;
          Alcotest.test_case "defaults collapse" `Quick
            test_verdict_key_resolves_defaults;
          Alcotest.test_case "exploration sharing" `Quick
            test_explore_key_sharing;
        ] );
      ( "identity",
        [
          Alcotest.test_case "cached == one-shot bytes" `Quick
            test_byte_identity;
          Alcotest.test_case "shared exploration bytes" `Quick
            test_shared_exploration_identity;
        ] );
      ( "handler",
        [
          Alcotest.test_case "ping and stats" `Quick test_handler_ping_stats;
          Alcotest.test_case "error replies" `Quick test_handler_errors;
          Alcotest.test_case "timeout bypasses cache" `Quick
            test_handler_timeout_uncached;
          Alcotest.test_case "survives fault injection" `Quick
            test_handler_survives_faults;
        ] );
      ( "server",
        [
          Alcotest.test_case "socket round-trip" `Quick test_server_roundtrip;
          Alcotest.test_case "concurrent duplicates" `Quick
            test_server_concurrent_duplicates;
          Alcotest.test_case "malformed and disconnects" `Quick
            test_server_survives_malformed_and_disconnect;
          Alcotest.test_case "clean shutdown" `Quick test_server_clean_shutdown;
        ] );
      ("client", [ Alcotest.test_case "header fields" `Quick test_client_fields ]);
    ]
