(* Contract tests for the telemetry sink (lib/obs):

   - counter conservation: the sink's Configs_explored/Configs_reduced
     agree exactly with the explorer's own result record across
     jobs 1/2/8, batch sizes and reduction engines none/sleep/source,
     and every reduced config is accounted by exactly one cause
     (Configs_reduced = Sleep_prunes + Memo_hits + Local_cache_hits +
     Source_prunes), with Batch_probe_hits never exceeding Memo_hits;
   - observational transparency: verdicts and computation fingerprints
     are byte-identical with telemetry on and off;
   - the deterministic stats snapshot is byte-stable across --jobs and
     --batch;
   - budget stops land in the per-reason counter exactly once;
   - the disabled sink records nothing;
   - the Chrome-trace exporter writes one well-formed event per line. *)

module T = Gem_obs.Telemetry
module Budget = Gem_check.Budget
module Strategy = Gem_check.Strategy
module Refine = Gem_check.Refine
module Explore = Gem_lang.Explore
module Monitor = Gem_lang.Monitor
module Csp = Gem_lang.Csp
module Buffer_problem = Gem_problems.Buffer
module Readers_writers = Gem_problems.Readers_writers

let with_telemetry f =
  T.reset ();
  T.enable ();
  Fun.protect ~finally:(fun () -> T.disable ()) f

let rw readers writers =
  Readers_writers.program ~monitor:Readers_writers.paper_monitor ~readers
    ~writers

let buffer_monitor =
  Buffer_problem.monitor_solution ~capacity:1 ~producers:1 ~consumers:1
    ~items_each:2

let buffer_csp =
  Buffer_problem.csp_solution ~capacity:1 ~producers:1 ~consumers:1
    ~items_each:2

(* ------------------------------------------------------------------ *)
(* Conservation across engine modes                                    *)
(* ------------------------------------------------------------------ *)

let check_conservation ~por ~jobs ~batch () =
  with_telemetry (fun () ->
      let o = Monitor.explore ~por ~jobs ~batch (rw 2 1) in
      Alcotest.(check int)
        "telemetry explored = result explored" o.Monitor.explored
        (T.read T.Configs_explored);
      Alcotest.(check int)
        "telemetry reduced = result reduced" o.Monitor.reduced
        (T.read T.Configs_reduced);
      Alcotest.(check int)
        "reduced = sleep prunes + memo hits + local-cache hits + source prunes"
        (T.read T.Sleep_prunes + T.read T.Memo_hits + T.read T.Local_cache_hits
       + T.read T.Source_prunes)
        (T.read T.Configs_reduced);
      Alcotest.(check bool)
        "batch-probe hits bounded by memo hits" true
        (T.read T.Batch_probe_hits <= T.read T.Memo_hits);
      Alcotest.(check int) "no source prunes outside the source engine" 0
        (T.read T.Source_prunes);
      if not por then
        Alcotest.(check int) "no sleep prunes without POR" 0
          (T.read T.Sleep_prunes);
      if jobs = 1 then begin
        Alcotest.(check int) "sequential engine steals no batches" 0
          (T.read T.Batches_stolen);
        Alcotest.(check int) "sequential engine has no local cache" 0
          (T.read T.Local_cache_hits)
      end)

let conservation_tests =
  List.concat_map
    (fun por ->
      List.map
        (fun (jobs, batch) ->
          Alcotest.test_case
            (Printf.sprintf "conservation por=%b jobs=%d batch=%d" por jobs
               batch)
            `Quick
            (check_conservation ~por ~jobs ~batch))
        [ (1, 1); (2, 7); (8, 1); (8, 64) ])
    [ true; false ]

(* The source-DPOR engine feeds the same invariant: its never-scheduled
   backtrack candidates land in Source_prunes, and the race machinery
   reports through Races_detected/Backtrack_points. The engine runs
   sequentially regardless of jobs/batch, so the parallel-only counters
   must stay zero even when those knobs are set. *)
let check_conservation_source ~jobs ~batch () =
  with_telemetry (fun () ->
      let o =
        Monitor.explore ~reduction:Explore.Source_sets ~jobs ~batch (rw 2 1)
      in
      Alcotest.(check int)
        "telemetry explored = result explored" o.Monitor.explored
        (T.read T.Configs_explored);
      Alcotest.(check int)
        "telemetry reduced = result reduced" o.Monitor.reduced
        (T.read T.Configs_reduced);
      Alcotest.(check int)
        "reduced = sleep prunes + memo hits + local-cache hits + source prunes"
        (T.read T.Sleep_prunes + T.read T.Memo_hits + T.read T.Local_cache_hits
       + T.read T.Source_prunes)
        (T.read T.Configs_reduced);
      Alcotest.(check bool) "contended workload detects races" true
        (T.read T.Races_detected > 0);
      Alcotest.(check bool) "races seed backtrack points" true
        (T.read T.Backtrack_points > 0);
      Alcotest.(check int) "source engine runs sequentially: no steals" 0
        (T.read T.Batches_stolen);
      Alcotest.(check int) "source engine runs sequentially: no local cache" 0
        (T.read T.Local_cache_hits))

let conservation_source_tests =
  List.map
    (fun (jobs, batch) ->
      Alcotest.test_case
        (Printf.sprintf "conservation source jobs=%d batch=%d" jobs batch)
        `Quick
        (check_conservation_source ~jobs ~batch))
    [ (1, 1); (8, 64) ]

(* Cross-language: the CSP interpreter feeds the same sink. *)
let test_conservation_csp () =
  with_telemetry (fun () ->
      let o = Csp.explore ~por:true ~jobs:2 buffer_csp in
      Alcotest.(check int) "csp explored" o.Csp.explored (T.read T.Configs_explored);
      Alcotest.(check int) "csp reduced" o.Csp.reduced (T.read T.Configs_reduced))

(* ------------------------------------------------------------------ *)
(* Observational transparency                                          *)
(* ------------------------------------------------------------------ *)

let sat_buffer comps =
  Refine.sat_ok
    ~strategy:(Strategy.Linearizations (Some 200))
    ~jobs:1
    ~problem:(Buffer_problem.spec ~capacity:1)
    ~map:Buffer_problem.monitor_correspondence comps

let test_transparency () =
  T.disable ();
  T.reset ();
  let o_off = Monitor.explore ~por:true ~jobs:1 buffer_monitor in
  let verdict_off = sat_buffer o_off.Monitor.computations in
  let fps_off =
    List.sort compare (List.map Explore.fingerprint o_off.Monitor.computations)
  in
  let verdict_on, fps_on =
    with_telemetry (fun () ->
        let o = Monitor.explore ~por:true ~jobs:1 buffer_monitor in
        ( sat_buffer o.Monitor.computations,
          List.sort compare (List.map Explore.fingerprint o.Monitor.computations)
        ))
  in
  Alcotest.(check bool) "verdict identical" verdict_off verdict_on;
  Alcotest.(check (list string)) "fingerprints identical" fps_off fps_on

(* ------------------------------------------------------------------ *)
(* Deterministic stats snapshot is --jobs-invariant                    *)
(* ------------------------------------------------------------------ *)

let test_deterministic_stats () =
  let snapshot ?reduction (jobs, batch) =
    with_telemetry (fun () ->
        let o = Monitor.explore ?reduction ~por:true ~jobs ~batch (rw 2 1) in
        let problem =
          Readers_writers.spec Readers_writers.Free_for_all
            ~users:(Readers_writers.user_names ~readers:2 ~writers:1)
        in
        ignore
          (Refine.sat_ok
             ~strategy:(Strategy.Linearizations (Some 200))
             ~jobs ~edges:Refine.Actor_paths ~problem
             ~map:Readers_writers.correspondence o.Monitor.computations);
        T.stats_json ~deterministic:true ())
  in
  let s1 = snapshot (1, 1) in
  Alcotest.(check string) "jobs=2 snapshot" s1 (snapshot (2, 1));
  Alcotest.(check string) "jobs=8 snapshot" s1 (snapshot (8, 1));
  Alcotest.(check string) "jobs=8 batch=64 snapshot" s1 (snapshot (8, 64));
  Alcotest.(check string) "jobs=4 batch=1024 snapshot" s1 (snapshot (4, 1024));
  Alcotest.(check string) "source-engine snapshot" s1
    (snapshot ~reduction:Explore.Source_sets (1, 1));
  Alcotest.(check bool) "carries schema_version" true
    (String.length s1 > 0
    && String.sub s1 0 20 = {|{"schema_version":1,|})

(* ------------------------------------------------------------------ *)
(* Budget stops                                                        *)
(* ------------------------------------------------------------------ *)

let test_budget_stop_counter () =
  with_telemetry (fun () ->
      let budget = Budget.make ~max_configs:5 () in
      let o = Monitor.explore ~budget ~por:true ~jobs:1 (rw 2 1) in
      Alcotest.(check bool) "exploration was cut" true
        (o.Monitor.exhausted <> None);
      Alcotest.(check int) "config-budget stop recorded once" 1
        (T.read T.Budget_stop_configs);
      Alcotest.(check int) "no other stop reasons" 0
        (T.read T.Budget_stop_deadline + T.read T.Budget_stop_runs
       + T.read T.Budget_stop_memory))

(* ------------------------------------------------------------------ *)
(* Disabled sink records nothing                                       *)
(* ------------------------------------------------------------------ *)

let all_counters =
  T.
    [
      Configs_explored; Configs_reduced; Memo_hits; Memo_misses; Sleep_prunes;
      Deque_steals; Shard_collisions; Runs_enumerated; Formula_evals;
      Vhs_histories; Budget_stop_deadline; Budget_stop_configs;
      Budget_stop_runs; Budget_stop_memory; Batches_stolen; Batch_probe_hits;
      Local_cache_hits; Races_detected; Backtrack_points; Source_prunes;
    ]

let all_phases =
  T.[ Interp_step; Canon_key; Seen_table; Run_enum; Formula_eval; Project; Merge ]

let test_disabled_noop () =
  T.disable ();
  T.reset ();
  let o = Monitor.explore ~por:true ~jobs:2 buffer_monitor in
  ignore (sat_buffer o.Monitor.computations);
  List.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "counter %s stays zero" (T.counter_name c))
        0 (T.read c))
    all_counters;
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "span %s stays zero" (T.phase_name p))
        0 (T.span_count p))
    all_phases

(* ------------------------------------------------------------------ *)
(* Trace export                                                        *)
(* ------------------------------------------------------------------ *)

(* Last in the suite: [trace_to] arms the exporter for the rest of the
   process (there is deliberately no disarm — gemcheck flushes at exit). *)
let test_trace_export () =
  let file = Filename.temp_file "gem_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      T.reset ();
      T.trace_to file;
      Fun.protect
        ~finally:(fun () -> T.disable ())
        (fun () ->
          ignore (Monitor.explore ~por:true ~jobs:2 buffer_monitor);
          T.flush_trace ());
      let ic = open_in file in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      let contains ~needle hay =
        let nh = String.length needle and lh = String.length hay in
        let rec at i = i + nh <= lh && (String.sub hay i nh = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "trace is non-empty" true (List.length lines > 0);
      List.iter
        (fun l ->
          let well_formed =
            String.length l > 9
            && String.sub l 0 9 = {|{"name":"|}
            && l.[String.length l - 1] = '}'
            && contains ~needle:{|"ph":"X"|} l
            && contains ~needle:{|"cat":"gem"|} l
          in
          Alcotest.(check bool)
            (Printf.sprintf "trace line well-formed: %s" l)
            true well_formed)
        lines)

let () =
  Alcotest.run "telemetry"
    [
      ("conservation", conservation_tests @ conservation_source_tests);
      ( "cross-language",
        [ Alcotest.test_case "csp conservation" `Quick test_conservation_csp ] );
      ( "transparency",
        [ Alcotest.test_case "verdicts unchanged" `Quick test_transparency ] );
      ( "determinism",
        [
          Alcotest.test_case "stats snapshot jobs-invariant" `Quick
            test_deterministic_stats;
        ] );
      ( "budget",
        [ Alcotest.test_case "stop counter" `Quick test_budget_stop_counter ] );
      ( "disabled",
        [ Alcotest.test_case "no-op sink" `Quick test_disabled_noop ] );
      ( "trace",
        [ Alcotest.test_case "chrome trace export" `Quick test_trace_export ] );
    ]
