(* End-to-end exit-code contract for the gemcheck binary:
     0 verified, 1 falsified, 2 inconclusive, 3 usage error.
   The test's cwd is _build/default/test, so the freshly built binary is
   reachable at ../bin/gemcheck.exe (declared as a dune dep). *)

let check = Alcotest.check

let gemcheck = Filename.concat (Filename.concat ".." "bin") "gemcheck.exe"

let run args =
  let null = if Sys.win32 then "NUL" else "/dev/null" in
  match
    Unix.system (Printf.sprintf "%s %s > %s 2>&1" (Filename.quote gemcheck) args null)
  with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED s | Unix.WSTOPPED s -> Alcotest.failf "killed by signal %d" s

let run_capture args =
  let ic = Unix.open_process_in (Printf.sprintf "%s %s 2>/dev/null" (Filename.quote gemcheck) args) in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (Buffer.contents buf, status)

let test_verified () =
  check Alcotest.int "small rw verifies" 0 (run "rw --readers 1 --writers 1")

let test_falsified () =
  check Alcotest.int "broken monitor falsified" 1 (run "rw --monitor no-exclusion")

let test_inconclusive_configs () =
  check Alcotest.int "undersized config budget" 2 (run "rw --max-configs 50")

let test_inconclusive_timeout () =
  check Alcotest.int "zero deadline" 2 (run "rw --timeout 0.0")

let test_usage_error () =
  check Alcotest.int "unknown flag" 3 (run "rw --no-such-flag");
  check Alcotest.int "unknown subcommand" 3 (run "frobnicate")

let test_no_por_parity () =
  (* Disabling the partial-order reduction must not change any verdict:
     one verified, one falsified and one budget-truncated workload exit
     with the same code POR on and off. *)
  let parity name args =
    check Alcotest.int name (run args) (run (args ^ " --no-por"))
  in
  parity "verified unchanged" "rw --readers 1 --writers 1";
  parity "falsified unchanged" "rw --monitor no-exclusion --readers 1 --writers 1";
  parity "truncated unchanged" "rw --readers 1 --writers 1 --max-configs 30";
  check Alcotest.int "--no-por verified=0" 0 (run "rw --readers 1 --writers 1 --no-por");
  check Alcotest.int "--no-por falsified=1" 1
    (run "rw --monitor no-exclusion --readers 1 --writers 1 --no-por");
  check Alcotest.int "--no-por truncated=2" 2
    (run "rw --readers 1 --writers 1 --max-configs 30 --no-por")

let test_json_report () =
  let out, status = run_capture "rw --json --max-configs 50" in
  (match status with
  | Unix.WEXITED 2 -> ()
  | _ -> Alcotest.fail "expected exit 2");
  let has needle =
    let nl = String.length needle and ol = String.length out in
    let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "status field" true (has {|"status":"inconclusive"|});
  check Alcotest.bool "reason field" true (has {|"kind":"config-budget"|});
  check Alcotest.bool "coverage field" true (has {|"configs_explored":50|})

let () =
  Alcotest.run "gemcheck_cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "verified=0" `Quick test_verified;
          Alcotest.test_case "falsified=1" `Quick test_falsified;
          Alcotest.test_case "inconclusive-configs=2" `Quick test_inconclusive_configs;
          Alcotest.test_case "inconclusive-timeout=2" `Quick test_inconclusive_timeout;
          Alcotest.test_case "usage=3" `Quick test_usage_error;
          Alcotest.test_case "no-por-parity" `Quick test_no_por_parity;
        ] );
      ("json", [ Alcotest.test_case "degradation report" `Quick test_json_report ]);
    ]
