(* End-to-end exit-code contract for the gemcheck binary:
     0 verified, 1 falsified, 2 inconclusive, 3 usage error.
   The test's cwd is _build/default/test, so the freshly built binary is
   reachable at ../bin/gemcheck.exe (declared as a dune dep). *)

let check = Alcotest.check

let gemcheck = Filename.concat (Filename.concat ".." "bin") "gemcheck.exe"

(* [env] is a shell-syntax variable binding prefix (e.g. "GEM_JOBS=2");
   setting it on the command line keeps the test runner's own
   environment untouched, so tests cannot leak into one another. *)
let run ?(env = "") args =
  let null = if Sys.win32 then "NUL" else "/dev/null" in
  match
    Unix.system
      (Printf.sprintf "%s %s %s > %s 2>&1" env (Filename.quote gemcheck) args null)
  with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED s | Unix.WSTOPPED s -> Alcotest.failf "killed by signal %d" s

let run_capture ?(env = "") args =
  let ic =
    Unix.open_process_in
      (Printf.sprintf "%s %s %s 2>/dev/null" env (Filename.quote gemcheck) args)
  in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (Buffer.contents buf, status)

let contains hay needle =
  let nl = String.length needle and ol = String.length hay in
  let rec go i = i + nl <= ol && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_verified () =
  check Alcotest.int "small rw verifies" 0 (run "rw --readers 1 --writers 1")

let test_falsified () =
  check Alcotest.int "broken monitor falsified" 1 (run "rw --monitor no-exclusion")

let test_inconclusive_configs () =
  check Alcotest.int "undersized config budget" 2 (run "rw --max-configs 50")

let test_inconclusive_timeout () =
  check Alcotest.int "zero deadline" 2 (run "rw --timeout 0.0")

let test_usage_error () =
  check Alcotest.int "unknown flag" 3 (run "rw --no-such-flag");
  check Alcotest.int "unknown subcommand" 3 (run "frobnicate")

let test_no_por_parity () =
  (* Disabling the partial-order reduction must not change any verdict:
     one verified, one falsified and one budget-truncated workload exit
     with the same code POR on and off. *)
  let parity name args =
    check Alcotest.int name (run args) (run (args ^ " --no-por"))
  in
  parity "verified unchanged" "rw --readers 1 --writers 1";
  parity "falsified unchanged" "rw --monitor no-exclusion --readers 1 --writers 1";
  parity "truncated unchanged" "rw --readers 1 --writers 1 --max-configs 30";
  check Alcotest.int "--no-por verified=0" 0 (run "rw --readers 1 --writers 1 --no-por");
  check Alcotest.int "--no-por falsified=1" 1
    (run "rw --monitor no-exclusion --readers 1 --writers 1 --no-por");
  check Alcotest.int "--no-por truncated=2" 2
    (run "rw --readers 1 --writers 1 --max-configs 30 --no-por")

(* --reduction contract: the engine choice must never change a verdict
   or exit code; invalid spellings — flag or GEM_REDUCTION env — are
   usage errors (exit 3); --no-por stays an exact alias for --reduction
   none (and conflicts with the reduced engines). *)
let test_reduction_parity () =
  let parity name args =
    let base = run args in
    List.iter
      (fun engine ->
        check Alcotest.int
          (Printf.sprintf "%s --reduction %s" name engine)
          base
          (run (Printf.sprintf "%s --reduction %s" args engine)))
      [ "none"; "sleep"; "source" ]
  in
  parity "verified unchanged" "rw --readers 1 --writers 1";
  parity "falsified unchanged" "rw --monitor no-exclusion --readers 1 --writers 1";
  parity "truncated unchanged" "rw --readers 1 --writers 1 --max-configs 30";
  parity "buffer ada" "buffer --lang ada --items 2";
  parity "db" "db --sites 2";
  check Alcotest.int "--reduction source --jobs 4 composes" 0
    (run "rw --readers 1 --writers 1 --reduction source --jobs 4")

let test_reduction_rejected () =
  check Alcotest.int "--reduction turbo rejected" 3 (run "rw --reduction turbo");
  check Alcotest.int "--reduction Source rejected (case-sensitive)" 3
    (run "rw --reduction Source");
  check Alcotest.int "empty --reduction rejected" 3 (run "rw --reduction \"\"");
  (* --no-por is an alias for --reduction none: redundant agreement is
     fine, contradiction is a usage error. *)
  check Alcotest.int "--no-por --reduction none agree" 0
    (run "rw --readers 1 --writers 1 --no-por --reduction none");
  check Alcotest.int "--no-por --reduction sleep conflict" 3
    (run "rw --readers 1 --writers 1 --no-por --reduction sleep");
  check Alcotest.int "--no-por --reduction source conflict" 3
    (run "rw --readers 1 --writers 1 --no-por --reduction source")

let test_reduction_env () =
  (* GEM_REDUCTION supplies the default engine with the same vocabulary
     and validation as --reduction, but explicit flags beat it: in
     particular --no-por under GEM_REDUCTION=source is the flag winning
     over the environment, not a flag conflict. *)
  check Alcotest.int "GEM_REDUCTION=source verified" 0
    (run ~env:"GEM_REDUCTION=source" "rw --readers 1 --writers 1");
  check Alcotest.int "GEM_REDUCTION=source falsified" 1
    (run ~env:"GEM_REDUCTION=source" "rw --monitor no-exclusion");
  check Alcotest.int "GEM_REDUCTION=none verified" 0
    (run ~env:"GEM_REDUCTION=none" "rw --readers 1 --writers 1");
  check Alcotest.int "--reduction sleep overrides env" 0
    (run ~env:"GEM_REDUCTION=none" "rw --readers 1 --writers 1 --reduction sleep");
  check Alcotest.int "--no-por overrides env" 0
    (run ~env:"GEM_REDUCTION=source" "rw --readers 1 --writers 1 --no-por");
  check Alcotest.int "GEM_REDUCTION=turbo is a usage error" 3
    (run ~env:"GEM_REDUCTION=turbo" "rw --readers 1 --writers 1")

(* The deterministic stats snapshot carries only the checking-phase
   invariant counters, which depend on the computation multiset alone —
   so it must be byte-identical whichever reduction engine explored. *)
let test_reduction_stats_deterministic () =
  let snapshot args engine =
    let out, status =
      run_capture
        (Printf.sprintf "%s --stats-deterministic --reduction %s" args engine)
    in
    (match status with
    | Unix.WEXITED c when c <= 2 -> ()
    | _ -> Alcotest.failf "unexpected exit for %s --reduction %s" args engine);
    match List.rev (String.split_on_char '\n' (String.trim out)) with
    | last :: _ -> last
    | [] -> Alcotest.failf "no output for %s" args
  in
  List.iter
    (fun args ->
      let s = snapshot args "none" in
      check Alcotest.string (args ^ " sleep") s (snapshot args "sleep");
      check Alcotest.string (args ^ " source") s (snapshot args "source"))
    [
      "rw --readers 1 --writers 1";
      "buffer --lang csp --items 2";
      "buffer --lang ada --items 2";
      "db --sites 2";
    ]

(* --jobs contract: parallel exploration must never change a verdict or
   exit code, bad job counts are usage errors (the repo-wide contract
   maps every usage error to exit 3), and the GEM_JOBS environment
   variable is an exact alias for the flag — including its validation. *)
let test_jobs_parity () =
  let parity name args =
    check Alcotest.int name (run args) (run (args ^ " --jobs 4"))
  in
  parity "verified unchanged" "rw --readers 1 --writers 1";
  parity "falsified unchanged" "rw --monitor no-exclusion --readers 1 --writers 1";
  check Alcotest.int "--jobs 4 verified=0" 0 (run "rw --readers 1 --writers 1 --jobs 4");
  check Alcotest.int "--jobs 4 falsified=1" 1
    (run "rw --monitor no-exclusion --readers 1 --writers 1 --jobs 4");
  check Alcotest.int "--jobs 4 --no-por composes" 0
    (run "rw --readers 1 --writers 1 --jobs 4 --no-por");
  check Alcotest.int "--jobs 4 --no-por falsified=1" 1
    (run "rw --monitor no-exclusion --readers 1 --writers 1 --jobs 4 --no-por")

let test_jobs_env () =
  (* GEM_JOBS reaches cmdliner through the flag's ~env, so values and
     validation behave exactly like --jobs. *)
  check Alcotest.int "GEM_JOBS=2 verified" 0
    (run ~env:"GEM_JOBS=2" "rw --readers 1 --writers 1");
  check Alcotest.int "GEM_JOBS=2 falsified" 1
    (run ~env:"GEM_JOBS=2" "rw --monitor no-exclusion");
  check Alcotest.int "--jobs 1 overrides env" 0
    (run ~env:"GEM_JOBS=4" "rw --readers 1 --writers 1 --jobs 1");
  check Alcotest.int "GEM_JOBS=0 is a usage error" 3
    (run ~env:"GEM_JOBS=0" "rw --readers 1 --writers 1");
  check Alcotest.int "non-numeric GEM_JOBS is a usage error" 3
    (run ~env:"GEM_JOBS=three" "rw --readers 1 --writers 1")

let test_jobs_rejected () =
  (* Exit 3 per the repo's documented contract (3 = usage error; 2 is
     reserved for inconclusive verdicts). *)
  check Alcotest.int "--jobs 0 rejected" 3 (run "rw --jobs 0");
  check Alcotest.int "--jobs -2 rejected" 3 (run "rw --jobs=-2");
  check Alcotest.int "--jobs banana rejected" 3 (run "rw --jobs banana");
  (* And the rejection must come with a usage message on stderr. *)
  let null = if Sys.win32 then "NUL" else "/dev/null" in
  let ic =
    Unix.open_process_in
      (Printf.sprintf "%s rw --jobs 0 2>&1 > %s" (Filename.quote gemcheck) null)
  in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  ignore (Unix.close_process_in ic);
  let err = Buffer.contents buf in
  let has needle =
    let nl = String.length needle and ol = String.length err in
    let rec go i = i + nl <= ol && (String.sub err i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions usage" true (has "Usage");
  check Alcotest.bool "names the offending option" true (has "--jobs")

(* --batch contract: the work-distribution chunk size is a pure
   scheduling knob — no (jobs, batch) pair may change a verdict or exit
   code — and it validates exactly like --jobs: positive integers only,
   anything else is usage error 3, with GEM_BATCH as the env alias. *)
let test_batch_parity () =
  let parity name args =
    List.iter
      (fun batch ->
        check Alcotest.int
          (Printf.sprintf "%s batch=%d" name batch)
          (run args)
          (run (Printf.sprintf "%s --jobs 4 --batch %d" args batch)))
      [ 1; 7; 64; 1024 ]
  in
  parity "rw verified" "rw --readers 1 --writers 1";
  parity "rw falsified" "rw --monitor no-exclusion --readers 1 --writers 1";
  parity "rw no-por" "rw --readers 1 --writers 1 --no-por";
  parity "buffer csp" "buffer --lang csp --items 2";
  parity "db" "db --sites 2"

let test_batch_env () =
  check Alcotest.int "GEM_BATCH=7 verified" 0
    (run ~env:"GEM_BATCH=7" "rw --readers 1 --writers 1 --jobs 2");
  check Alcotest.int "GEM_BATCH=7 falsified" 1
    (run ~env:"GEM_BATCH=7" "rw --monitor no-exclusion --jobs 2");
  check Alcotest.int "--batch 1 overrides env" 0
    (run ~env:"GEM_BATCH=1024" "rw --readers 1 --writers 1 --batch 1");
  check Alcotest.int "GEM_BATCH=0 is a usage error" 3
    (run ~env:"GEM_BATCH=0" "rw --readers 1 --writers 1");
  check Alcotest.int "non-numeric GEM_BATCH is a usage error" 3
    (run ~env:"GEM_BATCH=chunky" "rw --readers 1 --writers 1")

let test_batch_rejected () =
  check Alcotest.int "--batch 0 rejected" 3 (run "rw --batch 0");
  check Alcotest.int "--batch -64 rejected" 3 (run "rw --batch=-64");
  check Alcotest.int "--batch banana rejected" 3 (run "rw --batch banana");
  let null = if Sys.win32 then "NUL" else "/dev/null" in
  let ic =
    Unix.open_process_in
      (Printf.sprintf "%s rw --batch 0 2>&1 > %s" (Filename.quote gemcheck) null)
  in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  ignore (Unix.close_process_in ic);
  let err = Buffer.contents buf in
  let has needle =
    let nl = String.length needle and ol = String.length err in
    let rec go i = i + nl <= ol && (String.sub err i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions usage" true (has "Usage");
  check Alcotest.bool "names the offending option" true (has "--batch")

let test_json_report () =
  (* Engine pinned: the sleep DFS lands exactly on the configuration
     budget, so the coverage field is deterministic no matter what
     GEM_REDUCTION says (source counts replayed work against the budget
     and stops with fewer distinct configurations on the books). *)
  let out, status = run_capture "rw --json --max-configs 50 --reduction sleep" in
  (match status with
  | Unix.WEXITED 2 -> ()
  | _ -> Alcotest.fail "expected exit 2");
  let has = contains out in
  check Alcotest.bool "status field" true (has {|"status":"inconclusive"|});
  check Alcotest.bool "reason field" true (has {|"kind":"config-budget"|});
  check Alcotest.bool "coverage field" true (has {|"configs_explored":50|})

(* --stats contract: a stats block on stdout after the verdict, carrying
   the schema version and both counter sections; the verdict and exit
   code are untouched. *)
let test_stats_output () =
  let out, status = run_capture "rw --readers 1 --writers 1 --stats" in
  (match status with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "expected exit 0 with --stats");
  let has = contains out in
  check Alcotest.bool "schema version" true (has {|"schema_version":1|});
  check Alcotest.bool "invariant section" true (has {|"invariant":{|});
  check Alcotest.bool "schedule section" true (has {|"schedule":{|});
  check Alcotest.bool "timings section" true (has {|"timings":{|});
  check Alcotest.bool "explored counter present" true (has {|"configs_explored":|})

let test_stats_env () =
  (* GEM_STATS is an exact alias for --stats, validation included. *)
  let out, status = run_capture ~env:"GEM_STATS=true" "rw --readers 1 --writers 1" in
  (match status with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "expected exit 0 with GEM_STATS=true");
  check Alcotest.bool "env enables stats" true (contains out {|"schema_version":1|});
  check Alcotest.int "bogus GEM_STATS is a usage error" 3
    (run ~env:"GEM_STATS=bogus" "rw --readers 1 --writers 1");
  let quiet, qstatus = run_capture "rw --readers 1 --writers 1" in
  (match qstatus with Unix.WEXITED 0 -> () | _ -> Alcotest.fail "expected exit 0");
  check Alcotest.bool "no stats without opt-in" false
    (contains quiet {|"schema_version"|})

(* --stats-deterministic: the snapshot must be byte-identical whatever
   --jobs and --batch are, on every subcommand that explores. *)
let test_stats_deterministic () =
  let snapshot args sched =
    let out, status =
      run_capture (Printf.sprintf "%s --stats-deterministic %s" args sched)
    in
    (match status with
    | Unix.WEXITED c when c <= 2 -> ()
    | _ -> Alcotest.failf "unexpected exit for %s %s" args sched);
    (* The stats block is the last line of stdout. *)
    match List.rev (String.split_on_char '\n' (String.trim out)) with
    | last :: _ -> last
    | [] -> Alcotest.failf "no output for %s" args
  in
  List.iter
    (fun args ->
      let s1 = snapshot args "--jobs 1" in
      check Alcotest.bool "snapshot looks deterministic" true
        (contains s1 {|"invariant":{|} && not (contains s1 {|"schedule"|}));
      check Alcotest.string (args ^ " jobs=2") s1 (snapshot args "--jobs 2");
      check Alcotest.string (args ^ " jobs=8") s1 (snapshot args "--jobs 8");
      check Alcotest.string
        (args ^ " jobs=8 batch=7")
        s1
        (snapshot args "--jobs 8 --batch 7");
      check Alcotest.string
        (args ^ " jobs=4 batch=1024")
        s1
        (snapshot args "--jobs 4 --batch 1024"))
    [
      "rw --readers 1 --writers 1";
      "buffer --lang monitor --items 2";
      "buffer --lang csp --items 2";
      "buffer --lang ada --items 2";
      "rwd --lang csp";
      "db --sites 2";
    ]

(* --exact-keys contract: falling back to exact canonical keys must not
   change any verdict or exit code — the fingerprint keys partition
   states identically, so the two modes explore the same space. *)
let test_exact_keys_parity () =
  let parity name args =
    check Alcotest.int name (run args) (run (args ^ " --exact-keys"))
  in
  parity "verified unchanged" "rw --readers 1 --writers 1";
  parity "falsified unchanged" "rw --monitor no-exclusion --readers 1 --writers 1";
  parity "truncated unchanged" "rw --readers 1 --writers 1 --max-configs 30";
  check Alcotest.int "--exact-keys verified=0" 0
    (run "rw --readers 1 --writers 1 --exact-keys");
  check Alcotest.int "--exact-keys falsified=1" 1
    (run "rw --monitor no-exclusion --readers 1 --writers 1 --exact-keys");
  check Alcotest.int "--exact-keys --jobs 4 --no-por composes" 0
    (run "rw --readers 1 --writers 1 --exact-keys --jobs 4 --no-por")

let test_exact_keys_env () =
  (* GEM_EXACT_KEYS reaches the interpreters through the Explore default,
     so it behaves like the flag wherever the flag is absent. *)
  check Alcotest.int "GEM_EXACT_KEYS=1 verified" 0
    (run ~env:"GEM_EXACT_KEYS=1" "rw --readers 1 --writers 1");
  check Alcotest.int "GEM_EXACT_KEYS=1 falsified" 1
    (run ~env:"GEM_EXACT_KEYS=1" "rw --monitor no-exclusion");
  check Alcotest.int "GEM_EXACT_KEYS=0 keeps fingerprints" 0
    (run ~env:"GEM_EXACT_KEYS=0" "rw --readers 1 --writers 1")

(* --audit-keys contract: the collision oracle rides along without
   changing the verdict, and the stats snapshot reports zero collisions
   on every shipped workload. *)
let test_audit_keys () =
  let audited args =
    let out, status = run_capture (args ^ " --audit-keys --stats") in
    (match status with
    | Unix.WEXITED c when c <= 1 -> ()
    | _ -> Alcotest.failf "unexpected exit for %s --audit-keys" args);
    check Alcotest.bool (args ^ ": collision counter present") true
      (contains out {|"fingerprint_collisions":|});
    check Alcotest.bool (args ^ ": zero collisions") true
      (contains out {|"fingerprint_collisions":0|})
  in
  audited "rw --readers 1 --writers 1";
  audited "buffer --lang ada --items 2";
  audited "db --sites 2";
  check Alcotest.int "verdict unchanged under audit" 0
    (run "rw --readers 1 --writers 1 --audit-keys");
  check Alcotest.int "GEM_AUDIT_KEYS env alias" 0
    (run ~env:"GEM_AUDIT_KEYS=1" "rw --readers 1 --writers 1")

(* --trace contract: a well-formed JSONL trace lands at the given path;
   the empty path is a usage error. *)
let test_trace_output () =
  let file = Filename.temp_file "gemcheck_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      check Alcotest.int "verdict unchanged with --trace" 0
        (run (Printf.sprintf "rw --readers 1 --writers 1 --trace %s" (Filename.quote file)));
      let ic = open_in file in
      let first = try input_line ic with End_of_file -> "" in
      close_in ic;
      check Alcotest.bool "trace file has events" true (String.length first > 0);
      check Alcotest.bool "event is a chrome trace object" true
        (contains first {|"ph":"X"|} && contains first {|"cat":"gem"|}));
  check Alcotest.int "empty --trace path is a usage error" 3 (run "rw --trace \"\"")

(* fuzz contract: deterministic stdout for a fixed (seed, iters) pair,
   exit 0 on agreement, exit 3 on usage errors, and a fast exit under a
   zero time budget. Throughput goes to stderr only, so run_capture
   (stdout-only) sees the deterministic part. *)
let test_fuzz_deterministic () =
  let args = "fuzz --seed 42 --iters 6" in
  let out1, status1 = run_capture args in
  (match status1 with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "expected exit 0");
  let out2, status2 = run_capture args in
  (match status2 with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "expected exit 0 on rerun");
  check Alcotest.string "same seed, byte-identical stdout" out1 out2;
  check Alcotest.bool "reports the lattice" true (contains out1 "lattice=28 cells");
  check Alcotest.bool "reports agreement" true (contains out1 "6/6 instances agreed");
  check Alcotest.bool "PASS marker" true (contains out1 "PASS");
  check Alcotest.bool "no wall-clock on stdout" false (contains out1 "configs/s")

let test_fuzz_usage () =
  check Alcotest.int "--iters 0 rejected" 3 (run "fuzz --iters 0");
  check Alcotest.int "--iters banana rejected" 3 (run "fuzz --iters banana");
  check Alcotest.int "negative time budget rejected" 3 (run "fuzz --time-budget=-1");
  check Alcotest.int "unknown flag rejected" 3 (run "fuzz --no-such-flag")

let test_fuzz_time_budget () =
  let out, status = run_capture "fuzz --time-budget 0 --iters 100000" in
  (match status with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "expected exit 0 under zero budget");
  check Alcotest.bool "ran zero instances" true (contains out "0/100000 instances agreed")

(* The deliberately-broken-oracle demo: alloc fault injection makes the
   resilient (bitstate) engine die with memory-watermark instead of the
   mandatory bitstate-collision-risk downgrade — the oracle must catch
   it, shrink it, and write a replayable reproducer. *)
let test_fuzz_broken_oracle () =
  let dir = Filename.temp_file "gemfuzz_corpus" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let out, status =
        run_capture ~env:"GEM_FAULT=1:10:alloc"
          (Printf.sprintf "fuzz --seed 1 --iters 5 --corpus %s" (Filename.quote dir))
      in
      (match status with
      | Unix.WEXITED 1 -> ()
      | Unix.WEXITED c -> Alcotest.failf "expected exit 1, got %d" c
      | _ -> Alcotest.fail "killed");
      check Alcotest.bool "reports the disagreement" true (contains out "DISAGREEMENT");
      check Alcotest.bool "names the divergent exhaustion" true
        (contains out "memory-watermark");
      check Alcotest.bool "shrunk line present" true (contains out "shrunk (");
      check Alcotest.bool "FAIL marker" true (contains out "FAIL");
      let repro =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".gemfuzz")
      in
      check Alcotest.bool "reproducer written" true (repro <> []))

(* matrix contract: BENCH-schema JSON on stdout, --no-timings output is
   deterministic, unknown families are usage errors, and --out writes
   the report to a file instead. *)
let test_matrix_json () =
  let args = "matrix --family db --no-timings" in
  let out1, status = run_capture args in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c -> Alcotest.failf "expected exit 0, got %d" c
  | _ -> Alcotest.fail "killed");
  let has = contains out1 in
  check Alcotest.bool "schema version" true (has {|"schema_version":1|});
  check Alcotest.bool "command tag" true (has {|"command":"matrix"|});
  check Alcotest.bool "family row" true (has {|"family":"db"|});
  check Alcotest.bool "params object" true (has {|"params":{"sites":2}|});
  check Alcotest.bool "status field" true (has {|"status":"verified"|});
  check Alcotest.bool "no timings" false (has {|"wall_s"|});
  let out2, _ = run_capture args in
  check Alcotest.string "deterministic without timings" out1 out2;
  let timed, _ = run_capture "matrix --family db" in
  check Alcotest.bool "timings by default" true (contains timed {|"wall_s"|})

let test_matrix_usage () =
  check Alcotest.int "unknown family rejected" 3 (run "matrix --family frobnicate");
  check Alcotest.int "unknown scale rejected" 3 (run "matrix --scale huge");
  check Alcotest.int "bad jobs rejected" 3 (run "matrix --family db --jobs 0")

let test_matrix_out_and_budget () =
  let file = Filename.temp_file "gemcheck_matrix" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      check Alcotest.int "--out db report exits 0" 0
        (run (Printf.sprintf "matrix --family db --out %s" (Filename.quote file)));
      let ic = open_in file in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      check Alcotest.bool "file holds the report" true
        (contains contents {|"schema_version":1|});
      (* Zero overall budget: every cell is cut or skipped -> exit 2 and
         only inconclusive/skipped rows. *)
      let out, status = run_capture "matrix --family db --time-budget 0 --no-timings" in
      (match status with
      | Unix.WEXITED 2 -> ()
      | Unix.WEXITED c -> Alcotest.failf "expected exit 2 under zero budget, got %d" c
      | _ -> Alcotest.fail "killed");
      check Alcotest.bool "no verified rows under zero budget" false
        (contains out {|"status":"verified"|}))

(* The daemon through the shipped binary: start [serve] in the
   background, drive it with [client], check the daemon's body is
   byte-identical to the one-shot [--json] report (cold and cached),
   then SIGTERM it and verify the clean exit and socket removal. *)
let test_serve_smoke () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gemcheck-cli-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists socket then Sys.remove socket;
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process gemcheck
      [| gemcheck; "serve"; "--socket"; socket; "--cache-size"; "8" |]
      Unix.stdin null null
  in
  Unix.close null;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      if Sys.file_exists socket then Sys.remove socket)
    (fun () ->
      let deadline = Unix.gettimeofday () +. 10. in
      while
        (not (Sys.file_exists socket)) && Unix.gettimeofday () < deadline
      do
        Unix.sleepf 0.05
      done;
      check Alcotest.bool "daemon came up" true (Sys.file_exists socket);
      let client req = Printf.sprintf "client --socket %s %s" (Filename.quote socket) (Filename.quote req) in
      (* Body (stdout) must be byte-identical to the one-shot report,
         cold and from the cache. *)
      let fresh, fresh_st = run_capture "db --sites 2 --json" in
      let cold, cold_st = run_capture (client "check db sites=2") in
      let warm, warm_st = run_capture (client "check db sites=2") in
      check Alcotest.string "cold body == one-shot --json" fresh cold;
      check Alcotest.string "cached body == one-shot --json" fresh warm;
      check Alcotest.bool "exit codes agree" true
        (fresh_st = cold_st && cold_st = warm_st);
      (* Provenance rides on the header, which [client] prints to
         stderr. *)
      let header_of req =
        let ic =
          Unix.open_process_in
            (Printf.sprintf "%s %s 2>&1 1>/dev/null" (Filename.quote gemcheck)
               (client req))
        in
        let line = try input_line ic with End_of_file -> "" in
        ignore (Unix.close_process_in ic);
        line
      in
      check Alcotest.bool "third request is a hit" true
        (contains (header_of "check db sites=2") {|"cache":"hit"|});
      check Alcotest.bool "distinct request misses" true
        (contains (header_of "check life width=3 height=3 generations=1")
           {|"cache":"miss"|});
      (* SIGTERM: drain, clean exit, socket unlinked. *)
      Unix.kill pid Sys.sigterm;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED c -> Alcotest.failf "serve exited %d on SIGTERM" c
      | _ -> Alcotest.fail "serve killed by signal");
      check Alcotest.bool "socket removed on shutdown" false
        (Sys.file_exists socket))

let test_client_no_daemon () =
  (* A client pointed at a dead socket is a usage-style failure (exit 3),
     not a hang or a crash. *)
  check Alcotest.int "no daemon" 3
    (run "client --socket /tmp/gemcheck-no-such.sock ping")

let () =
  Alcotest.run "gemcheck_cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "verified=0" `Quick test_verified;
          Alcotest.test_case "falsified=1" `Quick test_falsified;
          Alcotest.test_case "inconclusive-configs=2" `Quick test_inconclusive_configs;
          Alcotest.test_case "inconclusive-timeout=2" `Quick test_inconclusive_timeout;
          Alcotest.test_case "usage=3" `Quick test_usage_error;
          Alcotest.test_case "no-por-parity" `Quick test_no_por_parity;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "engine parity" `Quick test_reduction_parity;
          Alcotest.test_case "bad values rejected" `Quick
            test_reduction_rejected;
          Alcotest.test_case "GEM_REDUCTION env" `Quick test_reduction_env;
          Alcotest.test_case "deterministic stats across engines" `Quick
            test_reduction_stats_deterministic;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "jobs-parity" `Quick test_jobs_parity;
          Alcotest.test_case "GEM_JOBS env" `Quick test_jobs_env;
          Alcotest.test_case "bad values rejected" `Quick test_jobs_rejected;
          Alcotest.test_case "batch-parity" `Quick test_batch_parity;
          Alcotest.test_case "GEM_BATCH env" `Quick test_batch_env;
          Alcotest.test_case "bad batch rejected" `Quick test_batch_rejected;
        ] );
      ("json", [ Alcotest.test_case "degradation report" `Quick test_json_report ]);
      ( "keys",
        [
          Alcotest.test_case "exact-keys parity" `Quick test_exact_keys_parity;
          Alcotest.test_case "GEM_EXACT_KEYS env" `Quick test_exact_keys_env;
          Alcotest.test_case "audit-keys collision gate" `Quick test_audit_keys;
        ] );
      ( "stats",
        [
          Alcotest.test_case "--stats output" `Quick test_stats_output;
          Alcotest.test_case "GEM_STATS env" `Quick test_stats_env;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_stats_deterministic;
          Alcotest.test_case "--trace export" `Quick test_trace_output;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "deterministic stdout" `Quick test_fuzz_deterministic;
          Alcotest.test_case "usage errors" `Quick test_fuzz_usage;
          Alcotest.test_case "zero time budget" `Quick test_fuzz_time_budget;
          Alcotest.test_case "broken oracle caught" `Quick test_fuzz_broken_oracle;
        ] );
      ( "serve",
        [
          Alcotest.test_case "daemon smoke" `Quick test_serve_smoke;
          Alcotest.test_case "client without daemon" `Quick
            test_client_no_daemon;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "BENCH json" `Quick test_matrix_json;
          Alcotest.test_case "usage errors" `Quick test_matrix_usage;
          Alcotest.test_case "--out and --time-budget" `Quick
            test_matrix_out_and_budget;
        ] );
    ]
