(* End-to-end exit-code contract for the gemcheck binary:
     0 verified, 1 falsified, 2 inconclusive, 3 usage error.
   The test's cwd is _build/default/test, so the freshly built binary is
   reachable at ../bin/gemcheck.exe (declared as a dune dep). *)

let check = Alcotest.check

let gemcheck = Filename.concat (Filename.concat ".." "bin") "gemcheck.exe"

(* [env] is a shell-syntax variable binding prefix (e.g. "GEM_JOBS=2");
   setting it on the command line keeps the test runner's own
   environment untouched, so tests cannot leak into one another. *)
let run ?(env = "") args =
  let null = if Sys.win32 then "NUL" else "/dev/null" in
  match
    Unix.system
      (Printf.sprintf "%s %s %s > %s 2>&1" env (Filename.quote gemcheck) args null)
  with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED s | Unix.WSTOPPED s -> Alcotest.failf "killed by signal %d" s

let run_capture args =
  let ic = Unix.open_process_in (Printf.sprintf "%s %s 2>/dev/null" (Filename.quote gemcheck) args) in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (Buffer.contents buf, status)

let test_verified () =
  check Alcotest.int "small rw verifies" 0 (run "rw --readers 1 --writers 1")

let test_falsified () =
  check Alcotest.int "broken monitor falsified" 1 (run "rw --monitor no-exclusion")

let test_inconclusive_configs () =
  check Alcotest.int "undersized config budget" 2 (run "rw --max-configs 50")

let test_inconclusive_timeout () =
  check Alcotest.int "zero deadline" 2 (run "rw --timeout 0.0")

let test_usage_error () =
  check Alcotest.int "unknown flag" 3 (run "rw --no-such-flag");
  check Alcotest.int "unknown subcommand" 3 (run "frobnicate")

let test_no_por_parity () =
  (* Disabling the partial-order reduction must not change any verdict:
     one verified, one falsified and one budget-truncated workload exit
     with the same code POR on and off. *)
  let parity name args =
    check Alcotest.int name (run args) (run (args ^ " --no-por"))
  in
  parity "verified unchanged" "rw --readers 1 --writers 1";
  parity "falsified unchanged" "rw --monitor no-exclusion --readers 1 --writers 1";
  parity "truncated unchanged" "rw --readers 1 --writers 1 --max-configs 30";
  check Alcotest.int "--no-por verified=0" 0 (run "rw --readers 1 --writers 1 --no-por");
  check Alcotest.int "--no-por falsified=1" 1
    (run "rw --monitor no-exclusion --readers 1 --writers 1 --no-por");
  check Alcotest.int "--no-por truncated=2" 2
    (run "rw --readers 1 --writers 1 --max-configs 30 --no-por")

(* --jobs contract: parallel exploration must never change a verdict or
   exit code, bad job counts are usage errors (the repo-wide contract
   maps every usage error to exit 3), and the GEM_JOBS environment
   variable is an exact alias for the flag — including its validation. *)
let test_jobs_parity () =
  let parity name args =
    check Alcotest.int name (run args) (run (args ^ " --jobs 4"))
  in
  parity "verified unchanged" "rw --readers 1 --writers 1";
  parity "falsified unchanged" "rw --monitor no-exclusion --readers 1 --writers 1";
  check Alcotest.int "--jobs 4 verified=0" 0 (run "rw --readers 1 --writers 1 --jobs 4");
  check Alcotest.int "--jobs 4 falsified=1" 1
    (run "rw --monitor no-exclusion --readers 1 --writers 1 --jobs 4");
  check Alcotest.int "--jobs 4 --no-por composes" 0
    (run "rw --readers 1 --writers 1 --jobs 4 --no-por");
  check Alcotest.int "--jobs 4 --no-por falsified=1" 1
    (run "rw --monitor no-exclusion --readers 1 --writers 1 --jobs 4 --no-por")

let test_jobs_env () =
  (* GEM_JOBS reaches cmdliner through the flag's ~env, so values and
     validation behave exactly like --jobs. *)
  check Alcotest.int "GEM_JOBS=2 verified" 0
    (run ~env:"GEM_JOBS=2" "rw --readers 1 --writers 1");
  check Alcotest.int "GEM_JOBS=2 falsified" 1
    (run ~env:"GEM_JOBS=2" "rw --monitor no-exclusion");
  check Alcotest.int "--jobs 1 overrides env" 0
    (run ~env:"GEM_JOBS=4" "rw --readers 1 --writers 1 --jobs 1");
  check Alcotest.int "GEM_JOBS=0 is a usage error" 3
    (run ~env:"GEM_JOBS=0" "rw --readers 1 --writers 1");
  check Alcotest.int "non-numeric GEM_JOBS is a usage error" 3
    (run ~env:"GEM_JOBS=three" "rw --readers 1 --writers 1")

let test_jobs_rejected () =
  (* Exit 3 per the repo's documented contract (3 = usage error; 2 is
     reserved for inconclusive verdicts). *)
  check Alcotest.int "--jobs 0 rejected" 3 (run "rw --jobs 0");
  check Alcotest.int "--jobs -2 rejected" 3 (run "rw --jobs=-2");
  check Alcotest.int "--jobs banana rejected" 3 (run "rw --jobs banana");
  (* And the rejection must come with a usage message on stderr. *)
  let null = if Sys.win32 then "NUL" else "/dev/null" in
  let ic =
    Unix.open_process_in
      (Printf.sprintf "%s rw --jobs 0 2>&1 > %s" (Filename.quote gemcheck) null)
  in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  ignore (Unix.close_process_in ic);
  let err = Buffer.contents buf in
  let has needle =
    let nl = String.length needle and ol = String.length err in
    let rec go i = i + nl <= ol && (String.sub err i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions usage" true (has "Usage");
  check Alcotest.bool "names the offending option" true (has "--jobs")

let test_json_report () =
  let out, status = run_capture "rw --json --max-configs 50" in
  (match status with
  | Unix.WEXITED 2 -> ()
  | _ -> Alcotest.fail "expected exit 2");
  let has needle =
    let nl = String.length needle and ol = String.length out in
    let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "status field" true (has {|"status":"inconclusive"|});
  check Alcotest.bool "reason field" true (has {|"kind":"config-budget"|});
  check Alcotest.bool "coverage field" true (has {|"configs_explored":50|})

let () =
  Alcotest.run "gemcheck_cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "verified=0" `Quick test_verified;
          Alcotest.test_case "falsified=1" `Quick test_falsified;
          Alcotest.test_case "inconclusive-configs=2" `Quick test_inconclusive_configs;
          Alcotest.test_case "inconclusive-timeout=2" `Quick test_inconclusive_timeout;
          Alcotest.test_case "usage=3" `Quick test_usage_error;
          Alcotest.test_case "no-por-parity" `Quick test_no_por_parity;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "jobs-parity" `Quick test_jobs_parity;
          Alcotest.test_case "GEM_JOBS env" `Quick test_jobs_env;
          Alcotest.test_case "bad values rejected" `Quick test_jobs_rejected;
        ] );
      ("json", [ Alcotest.test_case "degradation report" `Quick test_json_report ]);
    ]
