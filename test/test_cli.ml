(* End-to-end exit-code contract for the gemcheck binary:
     0 verified, 1 falsified, 2 inconclusive, 3 usage error.
   The test's cwd is _build/default/test, so the freshly built binary is
   reachable at ../bin/gemcheck.exe (declared as a dune dep). *)

let check = Alcotest.check

let gemcheck = Filename.concat (Filename.concat ".." "bin") "gemcheck.exe"

(* [env] is a shell-syntax variable binding prefix (e.g. "GEM_JOBS=2");
   setting it on the command line keeps the test runner's own
   environment untouched, so tests cannot leak into one another. *)
let run ?(env = "") args =
  let null = if Sys.win32 then "NUL" else "/dev/null" in
  match
    Unix.system
      (Printf.sprintf "%s %s %s > %s 2>&1" env (Filename.quote gemcheck) args null)
  with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED s | Unix.WSTOPPED s -> Alcotest.failf "killed by signal %d" s

let run_capture ?(env = "") args =
  let ic =
    Unix.open_process_in
      (Printf.sprintf "%s %s %s 2>/dev/null" env (Filename.quote gemcheck) args)
  in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (Buffer.contents buf, status)

let contains hay needle =
  let nl = String.length needle and ol = String.length hay in
  let rec go i = i + nl <= ol && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_verified () =
  check Alcotest.int "small rw verifies" 0 (run "rw --readers 1 --writers 1")

let test_falsified () =
  check Alcotest.int "broken monitor falsified" 1 (run "rw --monitor no-exclusion")

let test_inconclusive_configs () =
  check Alcotest.int "undersized config budget" 2 (run "rw --max-configs 50")

let test_inconclusive_timeout () =
  check Alcotest.int "zero deadline" 2 (run "rw --timeout 0.0")

let test_usage_error () =
  check Alcotest.int "unknown flag" 3 (run "rw --no-such-flag");
  check Alcotest.int "unknown subcommand" 3 (run "frobnicate")

let test_no_por_parity () =
  (* Disabling the partial-order reduction must not change any verdict:
     one verified, one falsified and one budget-truncated workload exit
     with the same code POR on and off. *)
  let parity name args =
    check Alcotest.int name (run args) (run (args ^ " --no-por"))
  in
  parity "verified unchanged" "rw --readers 1 --writers 1";
  parity "falsified unchanged" "rw --monitor no-exclusion --readers 1 --writers 1";
  parity "truncated unchanged" "rw --readers 1 --writers 1 --max-configs 30";
  check Alcotest.int "--no-por verified=0" 0 (run "rw --readers 1 --writers 1 --no-por");
  check Alcotest.int "--no-por falsified=1" 1
    (run "rw --monitor no-exclusion --readers 1 --writers 1 --no-por");
  check Alcotest.int "--no-por truncated=2" 2
    (run "rw --readers 1 --writers 1 --max-configs 30 --no-por")

(* --jobs contract: parallel exploration must never change a verdict or
   exit code, bad job counts are usage errors (the repo-wide contract
   maps every usage error to exit 3), and the GEM_JOBS environment
   variable is an exact alias for the flag — including its validation. *)
let test_jobs_parity () =
  let parity name args =
    check Alcotest.int name (run args) (run (args ^ " --jobs 4"))
  in
  parity "verified unchanged" "rw --readers 1 --writers 1";
  parity "falsified unchanged" "rw --monitor no-exclusion --readers 1 --writers 1";
  check Alcotest.int "--jobs 4 verified=0" 0 (run "rw --readers 1 --writers 1 --jobs 4");
  check Alcotest.int "--jobs 4 falsified=1" 1
    (run "rw --monitor no-exclusion --readers 1 --writers 1 --jobs 4");
  check Alcotest.int "--jobs 4 --no-por composes" 0
    (run "rw --readers 1 --writers 1 --jobs 4 --no-por");
  check Alcotest.int "--jobs 4 --no-por falsified=1" 1
    (run "rw --monitor no-exclusion --readers 1 --writers 1 --jobs 4 --no-por")

let test_jobs_env () =
  (* GEM_JOBS reaches cmdliner through the flag's ~env, so values and
     validation behave exactly like --jobs. *)
  check Alcotest.int "GEM_JOBS=2 verified" 0
    (run ~env:"GEM_JOBS=2" "rw --readers 1 --writers 1");
  check Alcotest.int "GEM_JOBS=2 falsified" 1
    (run ~env:"GEM_JOBS=2" "rw --monitor no-exclusion");
  check Alcotest.int "--jobs 1 overrides env" 0
    (run ~env:"GEM_JOBS=4" "rw --readers 1 --writers 1 --jobs 1");
  check Alcotest.int "GEM_JOBS=0 is a usage error" 3
    (run ~env:"GEM_JOBS=0" "rw --readers 1 --writers 1");
  check Alcotest.int "non-numeric GEM_JOBS is a usage error" 3
    (run ~env:"GEM_JOBS=three" "rw --readers 1 --writers 1")

let test_jobs_rejected () =
  (* Exit 3 per the repo's documented contract (3 = usage error; 2 is
     reserved for inconclusive verdicts). *)
  check Alcotest.int "--jobs 0 rejected" 3 (run "rw --jobs 0");
  check Alcotest.int "--jobs -2 rejected" 3 (run "rw --jobs=-2");
  check Alcotest.int "--jobs banana rejected" 3 (run "rw --jobs banana");
  (* And the rejection must come with a usage message on stderr. *)
  let null = if Sys.win32 then "NUL" else "/dev/null" in
  let ic =
    Unix.open_process_in
      (Printf.sprintf "%s rw --jobs 0 2>&1 > %s" (Filename.quote gemcheck) null)
  in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  ignore (Unix.close_process_in ic);
  let err = Buffer.contents buf in
  let has needle =
    let nl = String.length needle and ol = String.length err in
    let rec go i = i + nl <= ol && (String.sub err i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions usage" true (has "Usage");
  check Alcotest.bool "names the offending option" true (has "--jobs")

let test_json_report () =
  let out, status = run_capture "rw --json --max-configs 50" in
  (match status with
  | Unix.WEXITED 2 -> ()
  | _ -> Alcotest.fail "expected exit 2");
  let has = contains out in
  check Alcotest.bool "status field" true (has {|"status":"inconclusive"|});
  check Alcotest.bool "reason field" true (has {|"kind":"config-budget"|});
  check Alcotest.bool "coverage field" true (has {|"configs_explored":50|})

(* --stats contract: a stats block on stdout after the verdict, carrying
   the schema version and both counter sections; the verdict and exit
   code are untouched. *)
let test_stats_output () =
  let out, status = run_capture "rw --readers 1 --writers 1 --stats" in
  (match status with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "expected exit 0 with --stats");
  let has = contains out in
  check Alcotest.bool "schema version" true (has {|"schema_version":1|});
  check Alcotest.bool "invariant section" true (has {|"invariant":{|});
  check Alcotest.bool "schedule section" true (has {|"schedule":{|});
  check Alcotest.bool "timings section" true (has {|"timings":{|});
  check Alcotest.bool "explored counter present" true (has {|"configs_explored":|})

let test_stats_env () =
  (* GEM_STATS is an exact alias for --stats, validation included. *)
  let out, status = run_capture ~env:"GEM_STATS=true" "rw --readers 1 --writers 1" in
  (match status with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "expected exit 0 with GEM_STATS=true");
  check Alcotest.bool "env enables stats" true (contains out {|"schema_version":1|});
  check Alcotest.int "bogus GEM_STATS is a usage error" 3
    (run ~env:"GEM_STATS=bogus" "rw --readers 1 --writers 1");
  let quiet, qstatus = run_capture "rw --readers 1 --writers 1" in
  (match qstatus with Unix.WEXITED 0 -> () | _ -> Alcotest.fail "expected exit 0");
  check Alcotest.bool "no stats without opt-in" false
    (contains quiet {|"schema_version"|})

(* --stats-deterministic: the snapshot must be byte-identical whatever
   --jobs is, on every subcommand that explores. *)
let test_stats_deterministic () =
  let snapshot args jobs =
    let out, status =
      run_capture (Printf.sprintf "%s --stats-deterministic --jobs %d" args jobs)
    in
    (match status with
    | Unix.WEXITED c when c <= 2 -> ()
    | _ -> Alcotest.failf "unexpected exit for %s --jobs %d" args jobs);
    (* The stats block is the last line of stdout. *)
    match List.rev (String.split_on_char '\n' (String.trim out)) with
    | last :: _ -> last
    | [] -> Alcotest.failf "no output for %s" args
  in
  List.iter
    (fun args ->
      let s1 = snapshot args 1 in
      check Alcotest.bool "snapshot looks deterministic" true
        (contains s1 {|"invariant":{|} && not (contains s1 {|"schedule"|}));
      check Alcotest.string (args ^ " jobs=2") s1 (snapshot args 2);
      check Alcotest.string (args ^ " jobs=8") s1 (snapshot args 8))
    [
      "rw --readers 1 --writers 1";
      "buffer --lang monitor --items 2";
      "buffer --lang csp --items 2";
      "buffer --lang ada --items 2";
      "rwd --lang csp";
      "db --sites 2";
    ]

(* --exact-keys contract: falling back to exact canonical keys must not
   change any verdict or exit code — the fingerprint keys partition
   states identically, so the two modes explore the same space. *)
let test_exact_keys_parity () =
  let parity name args =
    check Alcotest.int name (run args) (run (args ^ " --exact-keys"))
  in
  parity "verified unchanged" "rw --readers 1 --writers 1";
  parity "falsified unchanged" "rw --monitor no-exclusion --readers 1 --writers 1";
  parity "truncated unchanged" "rw --readers 1 --writers 1 --max-configs 30";
  check Alcotest.int "--exact-keys verified=0" 0
    (run "rw --readers 1 --writers 1 --exact-keys");
  check Alcotest.int "--exact-keys falsified=1" 1
    (run "rw --monitor no-exclusion --readers 1 --writers 1 --exact-keys");
  check Alcotest.int "--exact-keys --jobs 4 --no-por composes" 0
    (run "rw --readers 1 --writers 1 --exact-keys --jobs 4 --no-por")

let test_exact_keys_env () =
  (* GEM_EXACT_KEYS reaches the interpreters through the Explore default,
     so it behaves like the flag wherever the flag is absent. *)
  check Alcotest.int "GEM_EXACT_KEYS=1 verified" 0
    (run ~env:"GEM_EXACT_KEYS=1" "rw --readers 1 --writers 1");
  check Alcotest.int "GEM_EXACT_KEYS=1 falsified" 1
    (run ~env:"GEM_EXACT_KEYS=1" "rw --monitor no-exclusion");
  check Alcotest.int "GEM_EXACT_KEYS=0 keeps fingerprints" 0
    (run ~env:"GEM_EXACT_KEYS=0" "rw --readers 1 --writers 1")

(* --audit-keys contract: the collision oracle rides along without
   changing the verdict, and the stats snapshot reports zero collisions
   on every shipped workload. *)
let test_audit_keys () =
  let audited args =
    let out, status = run_capture (args ^ " --audit-keys --stats") in
    (match status with
    | Unix.WEXITED c when c <= 1 -> ()
    | _ -> Alcotest.failf "unexpected exit for %s --audit-keys" args);
    check Alcotest.bool (args ^ ": collision counter present") true
      (contains out {|"fingerprint_collisions":|});
    check Alcotest.bool (args ^ ": zero collisions") true
      (contains out {|"fingerprint_collisions":0|})
  in
  audited "rw --readers 1 --writers 1";
  audited "buffer --lang ada --items 2";
  audited "db --sites 2";
  check Alcotest.int "verdict unchanged under audit" 0
    (run "rw --readers 1 --writers 1 --audit-keys");
  check Alcotest.int "GEM_AUDIT_KEYS env alias" 0
    (run ~env:"GEM_AUDIT_KEYS=1" "rw --readers 1 --writers 1")

(* --trace contract: a well-formed JSONL trace lands at the given path;
   the empty path is a usage error. *)
let test_trace_output () =
  let file = Filename.temp_file "gemcheck_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      check Alcotest.int "verdict unchanged with --trace" 0
        (run (Printf.sprintf "rw --readers 1 --writers 1 --trace %s" (Filename.quote file)));
      let ic = open_in file in
      let first = try input_line ic with End_of_file -> "" in
      close_in ic;
      check Alcotest.bool "trace file has events" true (String.length first > 0);
      check Alcotest.bool "event is a chrome trace object" true
        (contains first {|"ph":"X"|} && contains first {|"cat":"gem"|}));
  check Alcotest.int "empty --trace path is a usage error" 3 (run "rw --trace \"\"")

let () =
  Alcotest.run "gemcheck_cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "verified=0" `Quick test_verified;
          Alcotest.test_case "falsified=1" `Quick test_falsified;
          Alcotest.test_case "inconclusive-configs=2" `Quick test_inconclusive_configs;
          Alcotest.test_case "inconclusive-timeout=2" `Quick test_inconclusive_timeout;
          Alcotest.test_case "usage=3" `Quick test_usage_error;
          Alcotest.test_case "no-por-parity" `Quick test_no_por_parity;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "jobs-parity" `Quick test_jobs_parity;
          Alcotest.test_case "GEM_JOBS env" `Quick test_jobs_env;
          Alcotest.test_case "bad values rejected" `Quick test_jobs_rejected;
        ] );
      ("json", [ Alcotest.test_case "degradation report" `Quick test_json_report ]);
      ( "keys",
        [
          Alcotest.test_case "exact-keys parity" `Quick test_exact_keys_parity;
          Alcotest.test_case "GEM_EXACT_KEYS env" `Quick test_exact_keys_env;
          Alcotest.test_case "audit-keys collision gate" `Quick test_audit_keys;
        ] );
      ( "stats",
        [
          Alcotest.test_case "--stats output" `Quick test_stats_output;
          Alcotest.test_case "GEM_STATS env" `Quick test_stats_env;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_stats_deterministic;
          Alcotest.test_case "--trace export" `Quick test_trace_output;
        ] );
    ]
