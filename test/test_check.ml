(* Unit tests for the checker: strategies, verdicts, temporal checking
   and the sat refinement projection. *)

module V = Gem_model.Value
module Build = Gem_model.Build
module C = Gem_model.Computation
module Etype = Gem_spec.Etype
module Spec = Gem_spec.Spec
module F = Gem_logic.Formula
module Budget = Gem_check.Budget
module Strategy = Gem_check.Strategy
module Check = Gem_check.Check
module Verdict = Gem_check.Verdict
module Refine = Gem_check.Refine

let check = Alcotest.check

let ab_etype =
  Etype.make "AB"
    ~events:
      [ { Etype.klass = "A"; schema = [] }; { Etype.klass = "B"; schema = [] };
        { Etype.klass = "C"; schema = [] }; { Etype.klass = "D"; schema = [] } ]
    ()

let diamond_spec = Spec.make "diamond"
    ~elements:[ ("E1", ab_etype); ("E2", ab_etype); ("E3", ab_etype); ("E4", ab_etype) ] ()

let diamond () =
  let b = Build.create () in
  let e1 = Build.emit b ~element:"E1" ~klass:"A" () in
  let e2 = Build.emit_enabled_by b ~by:e1 ~element:"E2" ~klass:"B" () in
  let e3 = Build.emit_enabled_by b ~by:e1 ~element:"E3" ~klass:"C" () in
  let e4 = Build.emit_enabled_by b ~by:e2 ~element:"E4" ~klass:"D" () in
  Build.enable b e3 e4;
  Build.finish b

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)
(* ------------------------------------------------------------------ *)

let test_strategy_counts () =
  let comp = diamond () in
  check Alcotest.int "exhaustive = 3 runs" 3
    (List.length (Strategy.runs (Strategy.Exhaustive_vhs None) comp));
  check Alcotest.int "linearizations = 2" 2
    (List.length (Strategy.runs (Strategy.Linearizations None) comp));
  check Alcotest.int "sampled = count" 5
    (List.length (Strategy.runs (Strategy.Sampled { seed = 1; count = 5 }) comp))

let test_sampled_deterministic () =
  (* Sampling is a function of the seed: repeating a check must repeat its
     exact run sample, and distinct seeds on a wide computation (a
     6-antichain, 720 linear extensions) must actually vary the sample. *)
  let render runs =
    String.concat "|" (List.map (Format.asprintf "%a" Gem_logic.Vhs.pp) runs)
  in
  let comp = diamond () in
  let sample seed =
    render (Strategy.runs (Strategy.Sampled { seed; count = 5 }) comp)
  in
  check Alcotest.string "same seed, same runs" (sample 7) (sample 7);
  let wide =
    let b = Build.create () in
    for i = 0 to 5 do
      ignore (Build.emit b ~element:(Printf.sprintf "E%d" i) ~klass:"A" ())
    done;
    Build.finish b
  in
  let wide_sample seed =
    render (Strategy.runs (Strategy.Sampled { seed; count = 4 }) wide)
  in
  check Alcotest.string "wide: same seed, same runs" (wide_sample 1) (wide_sample 1);
  check Alcotest.bool "wide: different seeds, different samples" false
    (String.equal (wide_sample 1) (wide_sample 2))

let test_strategy_completeness () =
  let comp = diamond () in
  check Alcotest.bool "exhaustive complete" true
    (Strategy.is_complete (Strategy.Exhaustive_vhs None) comp);
  check Alcotest.bool "capped below" false
    (Strategy.is_complete (Strategy.Exhaustive_vhs (Some 2)) comp);
  check Alcotest.bool "capped above" true
    (Strategy.is_complete (Strategy.Exhaustive_vhs (Some 10)) comp);
  check Alcotest.bool "linearizations never complete" false
    (Strategy.is_complete (Strategy.Linearizations None) comp);
  check Alcotest.bool "sampled never complete" false
    (Strategy.is_complete (Strategy.Sampled { seed = 1; count = 5 }) comp)

(* ------------------------------------------------------------------ *)
(* Check                                                               *)
(* ------------------------------------------------------------------ *)

let test_check_immediate () =
  let comp = diamond () in
  let good = F.forall [ ("a", F.Cls "A"); ("d", F.Cls "D") ] (F.temp_lt "a" "d") in
  let bad = F.forall [ ("b", F.Cls "B"); ("c", F.Cls "C") ] (F.temp_lt "b" "c") in
  check Alcotest.bool "good" true (Check.holds diamond_spec comp good);
  check Alcotest.bool "bad" false (Check.holds diamond_spec comp bad)

let test_check_temporal_all_runs () =
  let comp = diamond () in
  (* B before C in SOME run but not all: a henceforth-style property that
     depends on the run must fail. *)
  let b_never_alone =
    F.(henceforth
         (forall [ ("b", Cls "B") ]
            (occurred "b" ==> exists [ ("c", Cls "C") ] (occurred "c"))))
  in
  check Alcotest.bool "fails on some run" false
    (Check.holds diamond_spec comp b_never_alone);
  (* Eventually D holds on every complete run. *)
  check Alcotest.bool "eventually D" true
    (Check.holds diamond_spec comp
       F.(eventually (exists [ ("d", Cls "D") ] (occurred "d"))))

let test_check_verdict_contents () =
  let comp = diamond () in
  let v =
    Check.check_formula diamond_spec comp ~name:"bogus"
      (F.henceforth (F.exists [ ("d", F.Cls "D") ] (F.occurred "d")))
  in
  check Alcotest.bool "failed" false (Verdict.ok v);
  (match v.Verdict.failures with
  | [ f ] ->
      check Alcotest.string "name" "bogus" f.Verdict.restriction;
      check Alcotest.bool "witness run" true (f.Verdict.witness <> None)
  | _ -> Alcotest.fail "expected one failure");
  check Alcotest.bool "counted runs" true (v.Verdict.runs_checked >= 1)

let test_check_illegal_skips_restrictions () =
  let b = Build.create () in
  let _ = Build.emit b ~element:"Zed" ~klass:"A" () in
  let v = Check.check diamond_spec (Build.finish b) in
  check Alcotest.bool "not ok" false (Verdict.ok v);
  check Alcotest.bool "legality reported" true (v.Verdict.legality <> []);
  check Alcotest.bool "no restriction failures" true (v.Verdict.failures = [])

let test_check_strategy_ablation_soundness () =
  (* Anything exhaustive-vhs validates, linearizations must also validate
     (they are a subset of runs). *)
  let comp = diamond () in
  let prop =
    F.(henceforth
         (forall [ ("d", Cls "D") ]
            (occurred "d" ==> exists [ ("b", Cls "B") ] (occurred "b"))))
  in
  let ok_vhs = Check.holds ~strategy:(Strategy.Exhaustive_vhs None) diamond_spec comp prop in
  let ok_lin = Check.holds ~strategy:(Strategy.Linearizations None) diamond_spec comp prop in
  check Alcotest.bool "vhs ok" true ok_vhs;
  check Alcotest.bool "lin ok (subset)" true ok_lin

(* A property distinguishing vhs-exhaustive from linearizations: "some
   history separates B from C" holds on every linearization (events are
   added one at a time) but fails on the run whose step adds B and C
   simultaneously. This is the paper's point that histories may grow by
   concurrent bundles. *)
let test_check_simultaneity_distinguishes () =
  let comp = diamond () in
  let separated =
    F.(eventually
         (exists [ ("b", Cls "B") ]
            (occurred "b" &&& neg (exists [ ("c", Cls "C") ] (occurred "c")))
          ||| exists [ ("c", Cls "C") ]
                (occurred "c" &&& neg (exists [ ("b", Cls "B") ] (occurred "b")))))
  in
  check Alcotest.bool "linearizations blind" true
    (Check.holds ~strategy:(Strategy.Linearizations None) diamond_spec comp separated);
  check Alcotest.bool "vhs catches the joint step" false
    (Check.holds ~strategy:(Strategy.Exhaustive_vhs None) diamond_spec comp separated)

(* ------------------------------------------------------------------ *)
(* Refinement                                                          *)
(* ------------------------------------------------------------------ *)

(* Program: P emits Lo;Hi;Lo;Hi at two elements with glue events; problem:
   only Hi events matter, renamed to K at element "k". *)
let refine_program () =
  let b = Build.create () in
  let l0 = Build.emit b ~element:"P" ~klass:"Lo" () in
  let h0 = Build.emit_enabled_by b ~by:l0 ~element:"P" ~klass:"Hi"
      ~params:[ ("n", V.Int 0) ] () in
  let l1 = Build.emit_enabled_by b ~by:h0 ~element:"P" ~klass:"Lo" () in
  let _ = Build.emit_enabled_by b ~by:l1 ~element:"P" ~klass:"Hi"
      ~params:[ ("n", V.Int 1) ] () in
  Build.finish b

let k_etype = Etype.make "K" ~events:[ { Etype.klass = "K"; schema = [ ("n", Etype.P_int) ] } ] ()

let problem = Spec.make "hi-problem" ~elements:[ ("k", k_etype) ]
    ~restrictions:
      [ ("ordered",
         F.(forall [ ("a", Cls "K"); ("b", Cls "K") ]
              (Atom (Cmp (Lt, Index "a", Index "b")) ==> temp_lt "a" "b")) ) ]
    ()

let hi_map : Refine.correspondence =
 fun comp h ->
  let e = C.event comp h in
  if Gem_model.Event.has_class e "Hi" then
    Some { Refine.to_element = "k"; to_class = "K";
           to_params = [ ("n", Gem_model.Event.param e "n") ] }
  else None

let test_refine_project () =
  match Refine.project hi_map (refine_program ()) ~elements:problem.Spec.elements ~groups:[] with
  | Error _ -> Alcotest.fail "projection failed"
  | Ok p ->
      check Alcotest.int "2 events" 2 (C.n_events p);
      check Alcotest.(list int) "at k" [ 0; 1 ] (C.events_at p "k");
      check Alcotest.bool "enable through glue" true (C.enables p 0 1);
      check Alcotest.bool "indices" true
        ((C.event p 0).Gem_model.Event.id.index = 0
        && (C.event p 1).Gem_model.Event.id.index = 1)

let test_refine_sat () =
  check Alcotest.bool "sat" true
    (Refine.sat_ok ~problem ~map:hi_map [ refine_program () ])

let test_refine_unserializable () =
  (* Two concurrent Hi events mapped to one problem element. *)
  let b = Build.create () in
  let _ = Build.emit b ~element:"P" ~klass:"Hi" ~params:[ ("n", V.Int 0) ] () in
  let _ = Build.emit b ~element:"Q" ~klass:"Hi" ~params:[ ("n", V.Int 1) ] () in
  match Refine.project hi_map (Build.finish b) ~elements:problem.Spec.elements ~groups:[] with
  | Error (Refine.Unserializable _) -> ()
  | Error Refine.Cyclic_program -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "expected Unserializable"

let test_refine_actor_rule () =
  (* Same structure, but the glue event belongs to another actor: the
     Actor_paths rule must not produce the enable edge, Causal_paths must. *)
  let b = Build.create () in
  let h0 = Build.emit b ~element:"P" ~klass:"Hi" ~params:[ ("n", V.Int 0) ] () in
  let glue = Build.emit_enabled_by b ~by:h0 ~element:"Q" ~klass:"Lo" () in
  let h1 = Build.emit_enabled_by b ~by:glue ~element:"P" ~klass:"Hi"
      ~params:[ ("n", V.Int 1) ] () in
  ignore h1;
  let comp =
    C.map_events
      (fun _ e ->
        let actor = if Gem_model.Event.has_class e "Hi" then "P" else "Q" in
        Gem_model.Event.make ~actor ~element:e.Gem_model.Event.id.element
          ~index:e.Gem_model.Event.id.index ~klass:e.Gem_model.Event.klass
          e.Gem_model.Event.params)
      (Build.finish b)
  in
  let project edges =
    match Refine.project ~edges hi_map comp ~elements:problem.Spec.elements ~groups:[] with
    | Ok p -> p
    | Error _ -> Alcotest.fail "projection failed"
  in
  check Alcotest.bool "causal has edge" true (C.enables (project Refine.Causal_paths) 0 1);
  check Alcotest.bool "actor drops edge" false (C.enables (project Refine.Actor_paths) 0 1)

let test_refine_sat_reports_indices () =
  let results = Refine.sat ~problem ~map:hi_map [ refine_program (); refine_program () ] in
  check Alcotest.(list int) "indices" [ 0; 1 ] (List.map fst results);
  check Alcotest.bool "all ok" true (List.for_all (fun (_, v) -> Verdict.ok v) results)

(* ------------------------------------------------------------------ *)
(* Budgets and three-valued verdicts                                   *)
(* ------------------------------------------------------------------ *)

let eventually_d = F.(eventually (forall [ ("d", Cls "D") ] (occurred "d")))

let test_enumerate_truncation () =
  (* The diamond has 3 complete runs and 2 linearizations. *)
  let comp = diamond () in
  let e = Strategy.enumerate (Strategy.Exhaustive_vhs (Some 2)) comp in
  check Alcotest.(option int) "cut at 2" (Some 2) e.Strategy.truncated_at;
  check Alcotest.int "kept 2 runs" 2 (List.length e.Strategy.runs);
  check Alcotest.bool "incomplete" false e.Strategy.complete;
  let e = Strategy.enumerate (Strategy.Exhaustive_vhs (Some 10)) comp in
  check Alcotest.(option int) "cap above: not cut" None e.Strategy.truncated_at;
  check Alcotest.bool "complete" true e.Strategy.complete;
  (* All 2 linearizations fit under the cap: nothing was dropped, but
     coverage is still strategy-relative, never absolute. *)
  let e = Strategy.enumerate (Strategy.Linearizations (Some 2)) comp in
  check Alcotest.(option int) "linearizations not cut" None e.Strategy.truncated_at;
  check Alcotest.bool "linearizations incomplete" false e.Strategy.complete

let test_enumerate_budget_tightens () =
  let comp = diamond () in
  let budget = Budget.make ~max_runs:1 () in
  let e = Strategy.enumerate ~budget (Strategy.Exhaustive_vhs None) comp in
  check Alcotest.(option int) "budget cap wins" (Some 1) e.Strategy.truncated_at;
  check Alcotest.int "one run" 1 (List.length e.Strategy.runs)

let test_verdict_inconclusive_on_run_cap () =
  let comp = diamond () in
  let v =
    Check.check_formula ~strategy:(Strategy.Exhaustive_vhs None)
      ~budget:(Budget.make ~max_runs:1 ()) diamond_spec comp ~name:"p" eventually_d
  in
  (match Verdict.status v with
  | Verdict.Inconclusive (Budget.Run_cap 1) -> ()
  | s -> Alcotest.failf "expected Inconclusive (Run_cap 1), got %a" Verdict.pp_status s);
  check Alcotest.bool "seed ok-meaning unchanged" true (Verdict.ok v);
  check Alcotest.int "exit code 2" 2 (Verdict.exit_code (Verdict.status v));
  check Alcotest.bool "coverage partial" false v.Verdict.coverage.Budget.runs_complete

let test_verdict_overall () =
  let comp = diamond () in
  let unlimited = Check.check_formula diamond_spec comp ~name:"p" eventually_d in
  let falsified =
    Check.check_formula diamond_spec comp ~name:"never" F.(neg (henceforth True))
  in
  let inconclusive =
    Check.check_formula ~strategy:(Strategy.Exhaustive_vhs None)
      ~budget:(Budget.make ~max_runs:1 ()) diamond_spec comp ~name:"p" eventually_d
  in
  check Alcotest.bool "verified" true (Verdict.overall [ unlimited ] = Verdict.Verified);
  check Alcotest.bool "inconclusive taints" true
    (match Verdict.overall [ unlimited; inconclusive ] with
    | Verdict.Inconclusive _ -> true
    | _ -> false);
  (* Falsification is sound under truncation: it wins over Inconclusive. *)
  check Alcotest.bool "falsified wins" true
    (Verdict.overall [ inconclusive; falsified ] = Verdict.Falsified);
  check Alcotest.int "exit codes" 0 (Verdict.exit_code Verdict.Verified);
  check Alcotest.int "exit codes" 1 (Verdict.exit_code (Verdict.status falsified))

let () =
  Alcotest.run "gem_check"
    [
      ( "strategy",
        [
          Alcotest.test_case "counts" `Quick test_strategy_counts;
          Alcotest.test_case "sampled-deterministic" `Quick test_sampled_deterministic;
          Alcotest.test_case "completeness" `Quick test_strategy_completeness;
        ] );
      ( "check",
        [
          Alcotest.test_case "immediate" `Quick test_check_immediate;
          Alcotest.test_case "temporal-all-runs" `Quick test_check_temporal_all_runs;
          Alcotest.test_case "verdict" `Quick test_check_verdict_contents;
          Alcotest.test_case "illegal-skips" `Quick test_check_illegal_skips_restrictions;
          Alcotest.test_case "ablation-soundness" `Quick test_check_strategy_ablation_soundness;
          Alcotest.test_case "simultaneity" `Quick test_check_simultaneity_distinguishes;
        ] );
      ( "budget",
        [
          Alcotest.test_case "enumerate-truncation" `Quick test_enumerate_truncation;
          Alcotest.test_case "budget-tightens" `Quick test_enumerate_budget_tightens;
          Alcotest.test_case "inconclusive-run-cap" `Quick test_verdict_inconclusive_on_run_cap;
          Alcotest.test_case "overall" `Quick test_verdict_overall;
        ] );
      ( "refine",
        [
          Alcotest.test_case "project" `Quick test_refine_project;
          Alcotest.test_case "sat" `Quick test_refine_sat;
          Alcotest.test_case "unserializable" `Quick test_refine_unserializable;
          Alcotest.test_case "actor-rule" `Quick test_refine_actor_rule;
          Alcotest.test_case "sat-indices" `Quick test_refine_sat_reports_indices;
        ] );
    ]
