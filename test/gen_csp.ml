(* Random loop-free CSP programs, shared by the POR differential harness
   (test_por.ml) and the parallel-exploration parity suite
   (test_parallel.ml). Straight-line statements only — local arithmetic,
   markers, point-to-point sends/receives, shallow conditionals — so
   every generated program terminates (possibly in a deadlock leaf when
   communications mismatch; the differentials compare those too). *)

module Csp = Gem_lang.Csp
module E = Gem_lang.Expr
module V = Gem_model.Value

let rec stmt_to_string = function
  | Csp.CLocal (x, _) -> x ^ ":=e"
  | Csp.CMark _ -> "mark"
  | Csp.CComm (Csp.Send { to_; _ }) -> to_ ^ "!x"
  | Csp.CComm (Csp.Recv { from_; _ }) -> from_ ^ "?m"
  | Csp.CIfb (_, a, b) ->
      Printf.sprintf "if[%s][%s]"
        (String.concat ";" (List.map stmt_to_string a))
        (String.concat ";" (List.map stmt_to_string b))
  | _ -> "?"

let prog_to_string prog =
  String.concat " || "
    (List.map
       (fun p ->
         Printf.sprintf "%s:[%s]" p.Csp.proc_name
           (String.concat ";" (List.map stmt_to_string p.Csp.code)))
       prog)

let base_stmt_gen others =
  QCheck.Gen.(
    oneof
      [
        map (fun k -> Csp.CLocal ("x", E.Add (E.Var "x", E.Int k))) (int_range 0 3);
        return (Csp.CMark { klass = "M"; params = [ E.Var "x" ] });
        map (fun o -> Csp.CComm (Csp.Send { to_ = o; value = E.Var "x" })) (oneofl others);
        map (fun o -> Csp.CComm (Csp.Recv { from_ = o; bind = "m" })) (oneofl others);
      ])

let stmt_gen others =
  QCheck.Gen.(
    frequency
      [
        (4, base_stmt_gen others);
        ( 1,
          map3
            (fun t a b -> Csp.CIfb (E.Lt (E.Var "x", E.Int t), a, b))
            (int_range 0 3)
            (list_size (int_range 0 2) (base_stmt_gen others))
            (list_size (int_range 0 2) (base_stmt_gen others)) );
      ])

let prog_gen =
  QCheck.Gen.(
    let* n = int_range 2 3 in
    let names = List.init n (Printf.sprintf "P%d") in
    (* Three processes explode the unreduced path count; keep them short. *)
    let code_size = if n = 3 then int_range 1 2 else int_range 1 3 in
    flatten_l
      (List.map
         (fun me ->
           let others = List.filter (fun o -> o <> me) names in
           let* code = list_size code_size (stmt_gen others) in
           return
             { Csp.proc_name = me; locals = [ ("x", V.Int 1); ("m", V.Int 0) ]; code })
         names))

let prog_arb = QCheck.make prog_gen ~print:prog_to_string
