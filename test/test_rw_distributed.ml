(* Integration tests for the CSP and ADA Readers/Writers solutions
   (paper §11: "Monitor, CSP, and ADA solutions to the … Reader's Priority
   Readers/Writers problem have been verified"). *)

module RWD = Gem_problems.Rw_distributed
module Refine = Gem_check.Refine
module Strategy = Gem_check.Strategy

let check = Alcotest.check
let strategy = Strategy.Linearizations (Some 300)

let sat_csp program ~readers ~writers =
  let o = Gem_lang.Csp.explore ~max_configs:10_000_000 program in
  let rnames, wnames = RWD.user_names ~readers ~writers in
  let problem = RWD.spec ~readers:rnames ~writers:wnames in
  ( Refine.sat_ok ~strategy ~problem ~map:RWD.csp_correspondence o.Gem_lang.Csp.computations,
    List.length o.Gem_lang.Csp.computations,
    List.length o.Gem_lang.Csp.deadlocks )

let sat_ada program ~readers ~writers =
  (* POR pinned on: the server tasks loop, so the state space is cyclic
     and the unreduced DFS (no memoization) enumerates paths without
     bound. test_por compares the two modes on this workload under a
     shared configuration cap instead. *)
  let o = Gem_lang.Ada.explore ~por:true ~max_configs:10_000_000 program in
  let rnames, wnames = RWD.user_names ~readers ~writers in
  let problem = RWD.spec ~readers:rnames ~writers:wnames in
  ( Refine.sat_ok ~strategy ~problem ~map:RWD.ada_correspondence o.Gem_lang.Ada.computations,
    List.length o.Gem_lang.Ada.computations,
    List.length o.Gem_lang.Ada.deadlocks )

let test_csp_1r1w () =
  let ok, comps, dead = sat_csp (RWD.csp_program ~readers:1 ~writers:1) ~readers:1 ~writers:1 in
  check Alcotest.bool "sat" true ok;
  check Alcotest.bool "computations" true (comps > 0);
  check Alcotest.int "no deadlock" 0 dead

let test_csp_no_priority_refuted () =
  let ok, _, dead =
    sat_csp (RWD.csp_program_no_priority ~readers:1 ~writers:1) ~readers:1 ~writers:1
  in
  check Alcotest.bool "violated" false ok;
  check Alcotest.int "still no deadlock" 0 dead

let test_ada_1r1w () =
  let ok, comps, dead = sat_ada (RWD.ada_program ~readers:1 ~writers:1) ~readers:1 ~writers:1 in
  check Alcotest.bool "sat" true ok;
  check Alcotest.bool "computations" true (comps > 0);
  check Alcotest.int "no deadlock" 0 dead

let test_ada_no_priority_refuted () =
  let ok, _, dead =
    sat_ada (RWD.ada_program_no_priority ~readers:1 ~writers:1) ~readers:1 ~writers:1
  in
  check Alcotest.bool "violated" false ok;
  check Alcotest.int "still no deadlock" 0 dead

let test_csp_2r1w () =
  let ok, comps, dead = sat_csp (RWD.csp_program ~readers:2 ~writers:1) ~readers:2 ~writers:1 in
  check Alcotest.bool "sat" true ok;
  check Alcotest.bool "computations" true (comps > 0);
  check Alcotest.int "no deadlock" 0 dead

(* The 2R+1W ADA workload (5 790 distinct computations) is verified by the
   standalone experiment driver, not here — checking it takes minutes. *)

(* The data server serializes accesses: readers see the initial value or a
   written one, never garbage; functional correctness of the data chain is
   covered by the data element's Variable restriction inside the spec. *)
let test_csp_data_values () =
  let o = Gem_lang.Csp.explore ~max_configs:10_000_000 (RWD.csp_program ~readers:1 ~writers:1) in
  List.iter
    (fun comp ->
      List.iter
        (fun h ->
          let e = Gem_model.Computation.event comp h in
          if Gem_model.Event.has_class e "FinishRead" then
            let v = Gem_model.Value.as_int (Gem_model.Event.param e "p0") in
            Alcotest.(check bool) "read 0 or 101" true (v = 0 || v = 101))
        (Gem_model.Computation.all_events comp))
    o.Gem_lang.Csp.computations

let () =
  Alcotest.run "gem_rw_distributed"
    [
      ( "csp",
        [
          Alcotest.test_case "1r1w-sat" `Quick test_csp_1r1w;
          Alcotest.test_case "no-priority-refuted" `Quick test_csp_no_priority_refuted;
          Alcotest.test_case "2r1w-sat" `Slow test_csp_2r1w;
          Alcotest.test_case "data-values" `Quick test_csp_data_values;
        ] );
      ( "ada",
        [
          Alcotest.test_case "1r1w-sat" `Quick test_ada_1r1w;
          Alcotest.test_case "no-priority-refuted" `Quick test_ada_no_priority_refuted;
        ] );
    ]
