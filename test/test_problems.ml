(* Integration tests: the paper's case studies end to end. Sizes are kept
   small so the exhaustive schedule exploration stays fast. *)

module RW = Gem_problems.Readers_writers
module Buffer = Gem_problems.Buffer
module Refine = Gem_check.Refine
module Strategy = Gem_check.Strategy

let check = Alcotest.check
let strategy = Strategy.Linearizations (Some 200)

(* ------------------------------------------------------------------ *)
(* Buffers (E6/E7)                                                     *)
(* ------------------------------------------------------------------ *)

let test_one_slot_monitor () =
  let o = Gem_lang.Monitor.explore
      (Buffer.monitor_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2) in
  check Alcotest.bool "no deadlock" true (o.deadlocks = []);
  check Alcotest.bool "sat" true
    (Refine.sat_ok ~strategy ~problem:(Buffer.spec ~capacity:1)
       ~map:Buffer.monitor_correspondence o.computations)

let test_one_slot_csp () =
  let o = Gem_lang.Csp.explore
      (Buffer.csp_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2) in
  check Alcotest.bool "no deadlock" true (o.deadlocks = []);
  check Alcotest.bool "sat" true
    (Refine.sat_ok ~strategy ~problem:(Buffer.spec ~capacity:1)
       ~map:Buffer.csp_correspondence o.computations)

let test_one_slot_ada () =
  let o = Gem_lang.Ada.explore
      (Buffer.ada_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2) in
  check Alcotest.bool "no deadlock" true (o.deadlocks = []);
  check Alcotest.bool "sat" true
    (Refine.sat_ok ~strategy ~problem:(Buffer.spec ~capacity:1)
       ~map:Buffer.ada_correspondence o.computations)

let test_bounded_two_producers () =
  let o = Gem_lang.Monitor.explore
      (Buffer.monitor_solution ~capacity:2 ~producers:2 ~consumers:1 ~items_each:1) in
  check Alcotest.bool "no deadlock" true (o.deadlocks = []);
  check Alcotest.bool "sat" true
    (Refine.sat_ok ~strategy ~problem:(Buffer.spec ~capacity:2)
       ~map:Buffer.monitor_correspondence o.computations)

let test_buggy_buffer_refuted () =
  let o = Gem_lang.Monitor.explore
      (Buffer.buggy_monitor_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2) in
  check Alcotest.bool "capacity violated somewhere" false
    (Refine.sat_ok ~strategy ~problem:(Buffer.spec ~capacity:1)
       ~map:Buffer.monitor_correspondence o.computations)

let test_wrong_capacity_spec_refuted () =
  (* A capacity-2 implementation does NOT satisfy the 1-slot problem. *)
  let o = Gem_lang.Monitor.explore
      (Buffer.monitor_solution ~capacity:2 ~producers:1 ~consumers:1 ~items_each:2) in
  check Alcotest.bool "2-slot fails 1-slot spec" false
    (Refine.sat_ok ~strategy ~problem:(Buffer.spec ~capacity:1)
       ~map:Buffer.monitor_correspondence o.computations)

let test_buffer_counts_validation () =
  Alcotest.check_raises "uneven split"
    (Invalid_argument "Buffer: total items must divide evenly among consumers") (fun () ->
      ignore (Buffer.monitor_solution ~capacity:1 ~producers:1 ~consumers:2 ~items_each:3))

(* ------------------------------------------------------------------ *)
(* Readers/Writers (E8/E9)                                             *)
(* ------------------------------------------------------------------ *)

let rw_sat monitor version ~readers ~writers =
  let program = RW.program ~monitor ~readers ~writers in
  let o = Gem_lang.Monitor.explore program in
  Alcotest.(check bool) "no deadlock" true (o.deadlocks = []);
  let problem = RW.spec version ~users:(RW.user_names ~readers ~writers) in
  Refine.sat_ok ~strategy ~edges:Refine.Actor_paths ~problem ~map:RW.correspondence
    o.computations

let test_paper_monitor_readers_priority () =
  check Alcotest.bool "free-for-all" true (rw_sat RW.paper_monitor RW.Free_for_all ~readers:2 ~writers:1);
  check Alcotest.bool "readers-priority" true
    (rw_sat RW.paper_monitor RW.Readers_priority ~readers:2 ~writers:1)

let test_paper_monitor_not_writers_priority () =
  check Alcotest.bool "writers-priority fails" false
    (rw_sat RW.paper_monitor RW.Writers_priority ~readers:2 ~writers:1);
  check Alcotest.bool "no-starved-writers fails" false
    (rw_sat RW.paper_monitor RW.No_starved_writers ~readers:2 ~writers:1)

let test_writers_priority_monitor () =
  check Alcotest.bool "writers-priority" true
    (rw_sat RW.writers_priority_monitor RW.Writers_priority ~readers:2 ~writers:1);
  check Alcotest.bool "free-for-all" true
    (rw_sat RW.writers_priority_monitor RW.Free_for_all ~readers:2 ~writers:1);
  check Alcotest.bool "readers-priority fails" false
    (rw_sat RW.writers_priority_monitor RW.Readers_priority ~readers:2 ~writers:1)

let test_buggy_monitor_loses_priority () =
  (* Needs two writers to expose the inverted wakeup. *)
  check Alcotest.bool "paper ok at 1R+2W" true
    (rw_sat RW.paper_monitor RW.Readers_priority ~readers:1 ~writers:2);
  check Alcotest.bool "buggy violates readers-priority" false
    (rw_sat RW.buggy_monitor RW.Readers_priority ~readers:1 ~writers:2);
  check Alcotest.bool "buggy still excludes" true
    (rw_sat RW.buggy_monitor RW.Free_for_all ~readers:1 ~writers:2)

let test_no_exclusion_monitor_refuted () =
  let program = RW.program ~monitor:RW.no_exclusion_monitor ~readers:2 ~writers:1 in
  let o = Gem_lang.Monitor.explore program in
  let problem = RW.spec RW.Free_for_all ~users:(RW.user_names ~readers:2 ~writers:1) in
  check Alcotest.bool "mutual exclusion violated" false
    (Refine.sat_ok ~strategy ~edges:Refine.Actor_paths ~problem ~map:RW.correspondence
       o.computations)

let test_rw_threads_label_transactions () =
  let program = RW.program ~monitor:RW.paper_monitor ~readers:1 ~writers:1 in
  let comp = List.hd (Gem_lang.Monitor.explore program).computations in
  let problem = RW.spec RW.Free_for_all ~users:(RW.user_names ~readers:1 ~writers:1) in
  match
    Refine.project ~edges:Refine.Actor_paths RW.correspondence comp
      ~elements:problem.Gem_spec.Spec.elements ~groups:problem.Gem_spec.Spec.groups
  with
  | Error _ -> Alcotest.fail "projection failed"
  | Ok p ->
      let labelled = Gem_spec.Spec.label_threads problem p in
      let instances = Gem_spec.Thread.instances labelled RW.thread_name in
      check Alcotest.int "two transactions" 2 (List.length instances);
      List.iter
        (fun i ->
          let events = Gem_spec.Thread.events_of_instance labelled RW.thread_name i in
          check Alcotest.int "six events per transaction" 6 (List.length events))
        instances

(* ------------------------------------------------------------------ *)
(* Distributed database update (E10)                                   *)
(* ------------------------------------------------------------------ *)

let test_db_update_converges () =
  let r = Gem_problems.Db_update.check ~sites:3 () in
  check Alcotest.bool "computations exist" true (r.Gem_problems.Db_update.computations > 0);
  check Alcotest.int "no deadlock" 0 r.deadlocks;
  check Alcotest.bool "all converge to max" true r.converges;
  check Alcotest.bool "not exhausted" true (r.exhausted = None)

let test_db_update_two_sites () =
  let r = Gem_problems.Db_update.check ~sites:2 () in
  check Alcotest.bool "computations exist" true (r.Gem_problems.Db_update.computations > 0);
  check Alcotest.int "no deadlock" 0 r.deadlocks;
  check Alcotest.bool "converges" true r.converges

(* ------------------------------------------------------------------ *)
(* Asynchronous Game of Life (E11)                                     *)
(* ------------------------------------------------------------------ *)

let blinker = [ (1, 0); (1, 1); (1, 2) ]

let test_life_reference_blinker () =
  let gens = Gem_problems.Life.reference ~width:4 ~height:4 ~generations:2 ~alive:blinker in
  match gens with
  | [ g0; g1; g2 ] ->
      check Alcotest.bool "g0 vertical" true (g0.(1).(1) && g0.(0).(1) && g0.(2).(1));
      check Alcotest.bool "g1 horizontal" true (g1.(1).(0) && g1.(1).(1) && g1.(1).(2));
      check Alcotest.bool "g2 = g0" true (g2 = g0)
  | _ -> Alcotest.fail "expected 3 generations"

let test_life_computation_correct () =
  let w, h, g = 4, 4, 2 in
  let comp = Gem_problems.Life.build ~width:w ~height:h ~generations:g ~alive:blinker in
  check Alcotest.int "events" ((w * h * (g + 1)) + 1) (Gem_model.Computation.n_events comp);
  let spec = Gem_problems.Life.spec ~width:w ~height:h in
  check Alcotest.bool "legal" true (Gem_spec.Legality.is_legal spec comp);
  check Alcotest.bool "matches reference" true
    (Gem_check.Check.holds spec comp
       (Gem_problems.Life.matches_reference ~width:w ~height:h ~generations:g ~alive:blinker))

let test_life_asynchrony () =
  let comp = Gem_problems.Life.build ~width:4 ~height:4 ~generations:2 ~alive:blinker in
  check Alcotest.bool "asynchrony witness exists" true
    (Gem_problems.Life.asynchrony_witness comp <> None)

let test_life_progress_on_samples () =
  let comp = Gem_problems.Life.build ~width:3 ~height:3 ~generations:1 ~alive:[ (0, 0); (1, 1) ] in
  let spec = Gem_problems.Life.spec ~width:3 ~height:3 in
  let v =
    Gem_check.Check.check_formula
      ~strategy:(Strategy.Sampled { seed = 5; count = 10 })
      spec comp ~name:"progress"
      (Gem_problems.Life.progress ~generations:1)
  in
  check Alcotest.bool "progress" true (Gem_check.Verdict.ok v)

let test_life_wrong_reference_detected () =
  (* Checking a blinker computation against a different initial pattern's
     reference must fail. *)
  let comp = Gem_problems.Life.build ~width:4 ~height:4 ~generations:1 ~alive:blinker in
  let spec = Gem_problems.Life.spec ~width:4 ~height:4 in
  check Alcotest.bool "mismatch detected" false
    (Gem_check.Check.holds spec comp
       (Gem_problems.Life.matches_reference ~width:4 ~height:4 ~generations:1
          ~alive:[ (0, 0) ]))

let () =
  Alcotest.run "gem_problems"
    [
      ( "buffer",
        [
          Alcotest.test_case "one-slot-monitor" `Quick test_one_slot_monitor;
          Alcotest.test_case "one-slot-csp" `Quick test_one_slot_csp;
          Alcotest.test_case "one-slot-ada" `Quick test_one_slot_ada;
          Alcotest.test_case "bounded-2" `Quick test_bounded_two_producers;
          Alcotest.test_case "buggy-refuted" `Quick test_buggy_buffer_refuted;
          Alcotest.test_case "wrong-capacity-refuted" `Quick test_wrong_capacity_spec_refuted;
          Alcotest.test_case "counts-validation" `Quick test_buffer_counts_validation;
        ] );
      ( "readers-writers",
        [
          Alcotest.test_case "paper-readers-priority" `Slow test_paper_monitor_readers_priority;
          Alcotest.test_case "paper-not-writers-priority" `Slow test_paper_monitor_not_writers_priority;
          Alcotest.test_case "writers-priority-monitor" `Slow test_writers_priority_monitor;
          Alcotest.test_case "buggy-loses-priority" `Slow test_buggy_monitor_loses_priority;
          Alcotest.test_case "no-exclusion-refuted" `Slow test_no_exclusion_monitor_refuted;
          Alcotest.test_case "threads-label" `Quick test_rw_threads_label_transactions;
        ] );
      ( "db-update",
        [
          Alcotest.test_case "converges-3" `Slow test_db_update_converges;
          Alcotest.test_case "converges-2" `Quick test_db_update_two_sites;
        ] );
      ( "life",
        [
          Alcotest.test_case "reference-blinker" `Quick test_life_reference_blinker;
          Alcotest.test_case "computation-correct" `Quick test_life_computation_correct;
          Alcotest.test_case "asynchrony" `Quick test_life_asynchrony;
          Alcotest.test_case "progress" `Quick test_life_progress_on_samples;
          Alcotest.test_case "wrong-reference" `Quick test_life_wrong_reference_detected;
        ] );
    ]
