(* Tests for the CSP language: synchronous communication, guarded
   alternation/repetition, distributed termination, deadlock, and the GEM
   description of CSP. *)

module V = Gem_model.Value
module C = Gem_model.Computation
module Event = Gem_model.Event
module E = Gem_lang.Expr
open Gem_lang.Csp

let check = Alcotest.check

let sender ?(to_ = "Q") v =
  { proc_name = "P"; locals = []; code = [ CComm (Send { to_; value = E.Int v }) ] }

let receiver ?(from_ = "P") () =
  { proc_name = "Q"; locals = [ ("x", V.Int 0) ];
    code = [ CComm (Recv { from_; bind = "x" });
             CMark { klass = "Got"; params = [ E.Var "x" ] } ] }

let test_basic_communication () =
  let o = explore [ sender 42; receiver () ] in
  check Alcotest.int "one computation" 1 (List.length o.computations);
  check Alcotest.int "no deadlock" 0 (List.length o.deadlocks);
  let comp = List.hd o.computations in
  (match C.events_of_class comp "Got" with
  | [ h ] -> check Alcotest.int "value" 42 (V.as_int (Event.param (C.event comp h) "p0"))
  | _ -> Alcotest.fail "one Got");
  (* Four communication events with the paper's cross enables. *)
  let req_out = List.hd (C.events_of_class comp "ReqOut") in
  let req_in = List.hd (C.events_of_class comp "ReqIn") in
  let end_out = List.hd (C.events_of_class comp "EndOut") in
  let end_in = List.hd (C.events_of_class comp "EndIn") in
  check Alcotest.bool "inp.req |> out.end" true (C.enables comp req_in end_out);
  check Alcotest.bool "out.req |> inp.end" true (C.enables comp req_out end_in)

let test_mismatched_partners_deadlock () =
  (* P sends to Q, Q expects from R: no match, both stuck. *)
  let o = explore [ sender ~to_:"Q" 1; receiver ~from_:"R" () ] in
  check Alcotest.int "no completion" 0 (List.length o.computations);
  check Alcotest.int "deadlock" 1 (List.length o.deadlocks)

let test_choice_both_ways () =
  (* Q chooses between two senders; both resolutions explored. *)
  let s name v = { proc_name = name; locals = [];
                   code = [ CComm (Send { to_ = "Q"; value = E.Int v }) ] } in
  let q =
    { proc_name = "Q"; locals = [ ("x", V.Int 0) ];
      code =
        [ CIf
            [ { guard = E.Bool true; comm = Some (Recv { from_ = "A"; bind = "x" }); body = [] };
              { guard = E.Bool true; comm = Some (Recv { from_ = "B"; bind = "x" }); body = [] } ];
          CMark { klass = "First"; params = [ E.Var "x" ] };
          CIf
            [ { guard = E.Bool true; comm = Some (Recv { from_ = "A"; bind = "x" }); body = [] };
              { guard = E.Bool true; comm = Some (Recv { from_ = "B"; bind = "x" }); body = [] } ];
        ] }
  in
  let o = explore [ s "A" 1; s "B" 2; q ] in
  check Alcotest.int "no deadlock" 0 (List.length o.deadlocks);
  let firsts =
    List.map
      (fun comp ->
        match C.events_of_class comp "First" with
        | [ h ] -> V.as_int (Event.param (C.event comp h) "p0")
        | _ -> Alcotest.fail "one First")
      o.computations
  in
  check Alcotest.bool "both resolutions" true (List.mem 1 firsts && List.mem 2 firsts)

let test_guard_false_blocks_branch () =
  let q =
    { proc_name = "Q"; locals = [ ("x", V.Int 0) ];
      code =
        [ CIf
            [ { guard = E.Bool false; comm = Some (Recv { from_ = "P"; bind = "x" }); body = [] } ] ] }
  in
  let o = explore [ sender 1; q ] in
  check Alcotest.int "deadlocked" 1 (List.length o.deadlocks)

let test_repetition_terminates () =
  (* Echo loop ends when the producer is done (distributed termination). *)
  let producer =
    { proc_name = "P"; locals = [ ("i", V.Int 0) ];
      code =
        [ CWhile (E.Lt (E.Var "i", E.Int 3),
            [ CComm (Send { to_ = "Q"; value = E.Var "i" });
              CLocal ("i", E.Add (E.Var "i", E.Int 1)) ]) ] }
  in
  let consumer =
    { proc_name = "Q"; locals = [ ("x", V.Int 0); ("n", V.Int 0) ];
      code =
        [ CDo
            [ { guard = E.Bool true; comm = Some (Recv { from_ = "P"; bind = "x" });
                body = [ CLocal ("n", E.Add (E.Var "n", E.Int 1)) ] } ];
          CMark { klass = "Count"; params = [ E.Var "n" ] } ] }
  in
  let o = explore [ producer; consumer ] in
  check Alcotest.int "no deadlock" 0 (List.length o.deadlocks);
  check Alcotest.int "one computation" 1 (List.length o.computations);
  let comp = List.hd o.computations in
  match C.events_of_class comp "Count" with
  | [ h ] -> check Alcotest.int "received all" 3 (V.as_int (Event.param (C.event comp h) "p0"))
  | _ -> Alcotest.fail "one Count"

let test_boolean_only_branch () =
  let p =
    { proc_name = "P"; locals = [ ("done_", V.Int 0) ];
      code =
        [ CDo
            [ { guard = E.Eq (E.Var "done_", E.Int 0); comm = None;
                body = [ CMark { klass = "Tick"; params = [] };
                         CLocal ("done_", E.Int 1) ] } ];
          CMark { klass = "Fin"; params = [] } ] }
  in
  let o = explore [ p ] in
  check Alcotest.int "one run" 1 (List.length o.computations);
  let comp = List.hd o.computations in
  check Alcotest.int "ticked once" 1 (List.length (C.events_of_class comp "Tick"));
  check Alcotest.int "finished" 1 (List.length (C.events_of_class comp "Fin"))

let test_language_spec () =
  let program = [ sender 7; receiver () ] in
  let spec = language_spec program in
  let o = explore program in
  List.iter
    (fun comp ->
      Alcotest.(check bool) "csp spec ok" true
        (Gem_check.Verdict.ok (Gem_check.Check.check spec comp)))
    o.computations

let test_language_spec_catches_corruption () =
  (* Forge a computation where the received value differs from the sent. *)
  let b = Gem_model.Build.create () in
  let module Build = Gem_model.Build in
  let sm = Build.emit b ~element:"main" ~klass:"Start" () in
  let sp = Build.emit_enabled_by b ~by:sm ~element:"P" ~klass:"Start" () in
  let sq = Build.emit_enabled_by b ~by:sm ~element:"Q" ~klass:"Start" () in
  let ro = Build.emit_enabled_by b ~by:sp ~element:"P" ~klass:"ReqOut"
      ~params:[ ("to", V.Str "Q"); ("value", V.Int 1) ] () in
  let ri = Build.emit_enabled_by b ~by:sq ~element:"Q" ~klass:"ReqIn"
      ~params:[ ("from", V.Str "P") ] () in
  let eo = Build.emit_enabled_by b ~by:ro ~element:"P" ~klass:"EndOut"
      ~params:[ ("value", V.Int 1) ] () in
  Build.enable b ri eo;
  let ei = Build.emit_enabled_by b ~by:ri ~element:"Q" ~klass:"EndIn"
      ~params:[ ("value", V.Int 999) ] () in
  Build.enable b ro ei;
  let spec = language_spec [ sender 1; receiver () ] in
  check Alcotest.bool "corruption detected" false
    (Gem_check.Verdict.ok (Gem_check.Check.check spec (Build.finish b)))

let test_same_partial_order_deduped () =
  (* Two independent sender/receiver pairs: schedules differ, computation
     identical — dedup leaves exactly one. *)
  let s name to_ = { proc_name = name; locals = [];
                     code = [ CComm (Send { to_; value = E.Int 1 }) ] } in
  let r name from_ = { proc_name = name; locals = [ ("x", V.Int 0) ];
                       code = [ CComm (Recv { from_; bind = "x" }) ] } in
  let o = explore [ s "A" "B"; r "B" "A"; s "C" "D"; r "D" "C" ] in
  check Alcotest.int "one partial order" 1 (List.length o.computations)

let () =
  Alcotest.run "gem_csp"
    [
      ( "csp",
        [
          Alcotest.test_case "basic" `Quick test_basic_communication;
          Alcotest.test_case "mismatch-deadlock" `Quick test_mismatched_partners_deadlock;
          Alcotest.test_case "choice" `Quick test_choice_both_ways;
          Alcotest.test_case "false-guard" `Quick test_guard_false_blocks_branch;
          Alcotest.test_case "repetition-termination" `Quick test_repetition_terminates;
          Alcotest.test_case "boolean-branch" `Quick test_boolean_only_branch;
          Alcotest.test_case "language-spec" `Quick test_language_spec;
          Alcotest.test_case "spec-catches-corruption" `Quick test_language_spec_catches_corruption;
          Alcotest.test_case "dedup" `Quick test_same_partial_order_deduped;
        ] );
    ]
