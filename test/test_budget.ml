(* Stress/property tests for the resource-budget subsystem: random
   adversarial computations (wide diamonds with factorially many runs,
   dense enable graphs) checked under tiny budgets must never raise and
   must always produce a verdict — Verified, Falsified, or Inconclusive
   with a reason — well within the deadline. *)

module Build = Gem_model.Build
module C = Gem_model.Computation
module Etype = Gem_spec.Etype
module Spec = Gem_spec.Spec
module F = Gem_logic.Formula
module Budget = Gem_check.Budget
module Strategy = Gem_check.Strategy
module Check = Gem_check.Check
module Verdict = Gem_check.Verdict
module Explore = Gem_lang.Explore

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let e_etype = Etype.make "E" ~events:[ { Etype.klass = "E"; schema = [] } ] ()

let spec_for n_elements =
  Spec.make "budget-stress"
    ~elements:(List.init n_elements (fun i -> (Printf.sprintf "el%d" i, e_etype)))
    ()

(* Adversarial shapes: [`Diamond] puts most events pairwise concurrent
   (run count grows factorially — the paper's §7 explosion), [`Dense]
   wires many enables (deep, narrow orders), [`Random] mixes both. *)
let comp_gen =
  QCheck.Gen.(
    let* shape = oneofl [ `Diamond; `Dense; `Random ] in
    let* n = int_range 2 9 in
    let* n_elements = int_range 1 3 in
    let* assignment = flatten_l (List.init n (fun _ -> int_range 0 (n_elements - 1))) in
    let pairs =
      List.concat (List.init n (fun i -> List.init (n - i - 1) (fun d -> (i, i + d + 1))))
    in
    let* edges =
      match shape with
      | `Diamond ->
          (* Fan out from event 0 only: n-1 mutually concurrent events. *)
          return (List.init (n - 1) (fun j -> (0, j + 1)))
      | `Dense ->
          return pairs
      | `Random ->
          let* picks = flatten_l (List.map (fun e -> pair (return e) (int_range 0 3)) pairs) in
          return (List.filter_map (fun (e, k) -> if k = 0 then Some e else None) picks)
    in
    return (n, n_elements, assignment, edges))

let build_comp (_, _, assignment, edges) =
  let b = Build.create () in
  let handles =
    List.map
      (fun el -> Build.emit b ~element:(Printf.sprintf "el%d" el) ~klass:"E" ())
      assignment
  in
  let arr = Array.of_list handles in
  List.iter (fun (i, j) -> Build.enable b arr.(i) arr.(j)) edges;
  Build.finish b

let comp_arb =
  QCheck.make comp_gen ~print:(fun (n, k, a, es) ->
      Printf.sprintf "n=%d elements=%d assign=[%s] edges=%d" n k
        (String.concat ";" (List.map string_of_int a))
        (List.length es))

let eventually_all =
  F.(eventually (forall [ ("e", Cls "E") ] (occurred "e")))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Tiny budgets on adversarial computations: no exception, and the
   three-valued outcome is internally consistent. *)
let prop_never_raises =
  QCheck.Test.make ~count:200 ~name:"tiny budget never raises, always a verdict"
    comp_arb (fun ((_, k, _, _) as input) ->
      let comp = build_comp input in
      let budget = Budget.make ~max_runs:2 ~max_configs:3 ()
      and spec = spec_for k in
      let v =
        Check.check_formula ~strategy:(Strategy.Exhaustive_vhs None) ~budget spec comp
          ~name:"p" eventually_all
      in
      match Verdict.status v with
      | Verdict.Verified -> v.Verdict.exhaustion = None
      | Verdict.Falsified -> v.Verdict.failures <> [] || v.Verdict.legality <> []
      | Verdict.Inconclusive _ -> v.Verdict.exhaustion <> None)

(* Unlimited budget + exhaustive strategy is conclusive: never
   Inconclusive, and the coverage claims completeness. *)
let prop_unlimited_conclusive =
  QCheck.Test.make ~count:100 ~name:"unlimited exhaustive budget is conclusive"
    comp_arb (fun ((_, k, _, _) as input) ->
      let comp = build_comp input in
      let v =
        Check.check_formula ~strategy:(Strategy.Exhaustive_vhs None)
          ~budget:(Budget.unlimited ()) (spec_for k) comp ~name:"p" eventually_all
      in
      match Verdict.status v with
      | Verdict.Inconclusive _ -> false
      | Verdict.Verified -> v.Verdict.complete
      | Verdict.Falsified -> true)

(* Falsification is sound under truncation: a always-false restriction is
   reported Falsified even when the run cap cuts the enumeration. *)
let prop_falsified_wins =
  QCheck.Test.make ~count:100 ~name:"falsification survives run-cap truncation"
    comp_arb (fun ((_, k, _, _) as input) ->
      let comp = build_comp input in
      let budget = Budget.make ~max_runs:1 () in
      let v =
        Check.check_formula ~strategy:(Strategy.Exhaustive_vhs None) ~budget
          (spec_for k) comp ~name:"never" F.(neg (henceforth True))
      in
      Verdict.status v = Verdict.Falsified && Verdict.exit_code (Verdict.status v) = 1)

(* A zero deadline degrades to Inconclusive Deadline_exceeded — and does so
   promptly (the poll interval bounds the slack, not the run space). *)
let prop_deadline_inconclusive =
  QCheck.Test.make ~count:50 ~name:"zero deadline yields Inconclusive promptly"
    comp_arb (fun ((_, k, _, _) as input) ->
      let comp = build_comp input in
      let budget = Budget.make ~timeout:0.0 () in
      let t0 = Unix.gettimeofday () in
      let v =
        Check.check_formula ~strategy:(Strategy.Exhaustive_vhs None) ~budget
          (spec_for k) comp ~name:"p" eventually_all
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      elapsed < 5.0
      &&
      match Verdict.status v with
      | Verdict.Inconclusive Budget.Deadline_exceeded -> true
      | Verdict.Verified ->
          (* Small computations can finish inside the first poll window. *)
          v.Verdict.complete
      | _ -> false)

(* The non-raising explorer: malformed/adversarial move functions under a
   config budget never raise, respect the cap exactly, and report it —
   on one domain and on several. The parallel engine's claim_visit
   decrements on refusal, so even racing domains never overrun the cap. *)
let prop_explore_budget =
  QCheck.Test.make ~count:200 ~name:"Explore.run respects config budgets"
    QCheck.(triple (int_range 1 20) (int_range 2 5) (oneofl [ 1; 2; 8 ]))
    (fun (max_configs, fanout, jobs) ->
      let moves n = if n > 10_000 then [] else List.init fanout (fun i -> (n * fanout) + i + 1) in
      let r = Explore.run ~max_configs ~jobs ~moves ~terminated:(fun _ -> false) 0 in
      r.Explore.explored <= max_configs
      &&
      (* The tree is effectively infinite, so the cap must have fired. *)
      r.Explore.exhausted = Some Budget.Config_budget)

(* Work conservation across the merge: on the DAG over 0..cap with moves
   n -> {n+1, n+2}, every arrival at a state is accounted exactly once —
   first arrival as explored, every later one as reduced — whether the
   arrivals happen on one domain or race across eight. Arrivals = one
   root + one per edge, and the edge count is structural (2*cap - 1), so
   explored + reduced is an invariant of the graph, not the schedule. *)
let prop_explore_conservation =
  QCheck.Test.make ~count:100 ~name:"explored + reduced conserved across merge"
    QCheck.(pair (int_range 1 60) (oneofl [ 1; 2; 8 ]))
    (fun (cap, jobs) ->
      let moves n = List.filter (fun m -> m <= cap) [ n + 1; n + 2 ] in
      let edges = List.init (cap + 1) (fun n -> List.length (moves n)) in
      let arrivals = 1 + List.fold_left ( + ) 0 edges in
      let r =
        Explore.run ~jobs
          ~key:(fun n -> Explore.Exact (string_of_int n))
          ~moves ~terminated:(fun n -> n = cap) 0
      in
      r.Explore.exhausted = None
      && r.Explore.explored + r.Explore.reduced = arrivals
      && r.Explore.explored = cap + 1 (* each state claimed exactly once *)
      && r.Explore.completed = [ cap ]
      && r.Explore.deadlocked = [])

(* An expiring deadline must stop every domain promptly: the budget's
   cells are shared atomics, so the first domain to observe the deadline
   publishes the reason and the others drain. The merged result carries
   exactly that one reason, and the walk returns well within the 5s
   bound even though the state space is unbounded. *)
let test_parallel_deadline_stops_all_domains () =
  List.iter
    (fun jobs ->
      let budget = Budget.make ~timeout:0.05 () in
      let moves n = [ (2 * n) + 1; (2 * n) + 2 ] in
      let t0 = Unix.gettimeofday () in
      let r = Explore.run ~jobs ~budget ~max_configs:max_int ~moves ~terminated:(fun _ -> false) 0 in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "jobs=%d returns promptly (%.2fs)" jobs elapsed)
        true (elapsed < 5.0);
      Alcotest.check Alcotest.(option string)
        (Printf.sprintf "jobs=%d reports the deadline" jobs)
        (Some "deadline-exceeded")
        (Option.map Budget.reason_keyword r.Explore.exhausted);
      Alcotest.check Alcotest.(option string)
        (Printf.sprintf "jobs=%d budget agrees" jobs)
        (Some "deadline-exceeded")
        (Option.map Budget.reason_keyword (Budget.exhausted budget)))
    [ 1; 2; 8 ]

(* Concurrent charging from many domains grants exactly the cap in
   total: the counters are fetch-and-add atomics, not read-modify-write
   races. *)
let test_charge_config_across_domains () =
  let cap = 5_000 in
  let b = Budget.make ~max_configs:cap () in
  let counts =
    Gem_check.Par.map ~jobs:8
      (fun _ ->
        let granted = ref 0 in
        for _ = 1 to cap do
          if Budget.charge_config b then incr granted
        done;
        !granted)
      (List.init 8 Fun.id)
  in
  Alcotest.check Alcotest.int "total grants = cap" cap (List.fold_left ( + ) 0 counts);
  Alcotest.check Alcotest.(option string) "config-budget reason" (Some "config-budget")
    (Option.map Budget.reason_keyword (Budget.exhausted b))

(* Budget counters are exact and exhaustion is sticky. *)
let prop_charge_config_exact =
  QCheck.Test.make ~count:200 ~name:"charge_config grants exactly max_configs"
    QCheck.(int_range 1 300)
    (fun cap ->
      let b = Budget.make ~max_configs:cap () in
      let granted = ref 0 in
      for _ = 1 to cap + 50 do
        if Budget.charge_config b then incr granted
      done;
      !granted = cap
      && Budget.exhausted b = Some Budget.Config_budget
      && (* sticky: probing again does not clear it *)
      Budget.exhausted b = Some Budget.Config_budget)

let prop_strategy_truncation_exact =
  QCheck.Test.make ~count:100 ~name:"enumerate reports truncation exactly"
    comp_arb (fun input ->
      let comp = build_comp input in
      let total = List.length (Strategy.runs (Strategy.Exhaustive_vhs None) comp) in
      let cap = max 1 (total / 2) in
      let e = Strategy.enumerate (Strategy.Exhaustive_vhs (Some cap)) comp in
      if total > cap then
        e.Strategy.truncated_at = Some cap
        && List.length e.Strategy.runs = cap
        && not e.Strategy.complete
      else e.Strategy.truncated_at = None && e.Strategy.complete)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "gem_budget"
    [
      ( "stress",
        [
          q prop_never_raises;
          q prop_unlimited_conclusive;
          q prop_falsified_wins;
          q prop_deadline_inconclusive;
        ] );
      ( "explore", [ q prop_explore_budget; q prop_explore_conservation ] );
      ( "parallel",
        [
          Alcotest.test_case "deadline stops all domains" `Quick
            test_parallel_deadline_stops_all_domains;
          Alcotest.test_case "charge_config across domains" `Quick
            test_charge_config_across_domains;
        ] );
      ( "accounting", [ q prop_charge_config_exact; q prop_strategy_truncation_exact ] );
    ]
