(* Unit tests for the specification layer: element types, group access
   (against the paper's §4 table), legality, abbreviations and threads. *)

module V = Gem_model.Value
module Group = Gem_model.Group
module Build = Gem_model.Build
module C = Gem_model.Computation
module Etype = Gem_spec.Etype
module Access = Gem_spec.Access
module Legality = Gem_spec.Legality
module Spec = Gem_spec.Spec
module Abbrev = Gem_spec.Abbrev
module Thread = Gem_spec.Thread
module F = Gem_logic.Formula
module Eval = Gem_logic.Eval

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Element types                                                       *)
(* ------------------------------------------------------------------ *)

let test_etype_decls () =
  let v = Etype.variable in
  check Alcotest.bool "declares Assign" true (Etype.declares v "Assign");
  check Alcotest.bool "declares Getval" true (Etype.declares v "Getval");
  check Alcotest.bool "no Frobnicate" false (Etype.declares v "Frobnicate")

let test_etype_schema () =
  let v = Etype.integer_variable in
  let assign = Option.get (Etype.event_decl v "Assign") in
  check Alcotest.bool "int ok" true (Etype.schema_ok assign [ ("newval", V.Int 3) ]);
  check Alcotest.bool "bool rejected" false (Etype.schema_ok assign [ ("newval", V.Bool true) ]);
  check Alcotest.bool "wrong name" false (Etype.schema_ok assign [ ("value", V.Int 3) ]);
  check Alcotest.bool "extra param" false
    (Etype.schema_ok assign [ ("newval", V.Int 3); ("x", V.Int 0) ]);
  let generic = Option.get (Etype.event_decl Etype.variable "Assign") in
  check Alcotest.bool "any accepts bool" true (Etype.schema_ok generic [ ("newval", V.Bool true) ])

let test_etype_refine () =
  let refined =
    Etype.refine Etype.variable ~name:"Logged"
      ~add_events:[ { Etype.klass = "Log"; schema = [] } ]
      ~add_restrictions:[ ("extra", fun _ -> F.True) ]
      ()
  in
  check Alcotest.string "name" "Logged" refined.Etype.type_name;
  check Alcotest.bool "base events kept" true (Etype.declares refined "Assign");
  check Alcotest.bool "new event" true (Etype.declares refined "Log");
  check Alcotest.int "restrictions grow" 2 (List.length refined.Etype.restrictions);
  Alcotest.check_raises "clash" (Invalid_argument "Etype.refine: event class Assign already declared")
    (fun () ->
      ignore
        (Etype.refine Etype.variable ~name:"Bad"
           ~add_events:[ { Etype.klass = "Assign"; schema = [] } ]
           ()))

(* ------------------------------------------------------------------ *)
(* Access control: the paper's §4 example, exact table                 *)
(* ------------------------------------------------------------------ *)

let paper_groups () =
  [
    Group.make "G1" [ Group.Elem "EL2"; Group.Elem "EL3" ];
    Group.make "G2" [ Group.Elem "EL4"; Group.Elem "EL5" ];
    Group.make "G3" [ Group.Elem "EL3"; Group.Elem "EL4" ];
    Group.make "G4" [ Group.Elem "EL1" ];
  ]

let paper_table =
  (* Row: source; columns it may enable — verbatim from the paper. *)
  [
    ("EL1", [ "EL1"; "EL6" ]);
    ("EL2", [ "EL2"; "EL3"; "EL6" ]);
    ("EL3", [ "EL2"; "EL3"; "EL4"; "EL6" ]);
    ("EL4", [ "EL3"; "EL4"; "EL5"; "EL6" ]);
    ("EL5", [ "EL4"; "EL5"; "EL6" ]);
    ("EL6", [ "EL6" ]);
  ]

let test_access_paper_table () =
  let els = [ "EL1"; "EL2"; "EL3"; "EL4"; "EL5"; "EL6" ] in
  let t = Access.build ~elements:els ~groups:(paper_groups ()) in
  List.iter
    (fun (src, allowed) ->
      List.iter
        (fun dst ->
          let expected = List.mem dst allowed in
          Alcotest.(check bool)
            (Printf.sprintf "%s |> %s" src dst)
            expected
            (Access.may_enable t ~from_element:src ~to_element:dst ~to_class:"K"))
        els)
    paper_table

let test_access_ports () =
  (* The paper's Abstraction example: datum reachable only via the port. *)
  let groups =
    [
      Group.make "Abstraction"
        [ Group.Elem "Datum"; Group.Elem "Oper" ]
        ~ports:[ { Group.port_element = "Oper"; port_class = "Start" } ];
    ]
  in
  let t = Access.build ~elements:[ "Datum"; "Oper"; "Client" ] ~groups in
  check Alcotest.bool "port reachable" true
    (Access.may_enable t ~from_element:"Client" ~to_element:"Oper" ~to_class:"Start");
  check Alcotest.bool "non-port class blocked" false
    (Access.may_enable t ~from_element:"Client" ~to_element:"Oper" ~to_class:"Other");
  check Alcotest.bool "datum blocked" false
    (Access.may_enable t ~from_element:"Client" ~to_element:"Datum" ~to_class:"Assign");
  check Alcotest.bool "inside group fine" true
    (Access.may_enable t ~from_element:"Oper" ~to_element:"Datum" ~to_class:"Assign");
  check Alcotest.bool "outward fine" true
    (Access.may_enable t ~from_element:"Datum" ~to_element:"Client" ~to_class:"K")

let test_access_nested () =
  let groups =
    [ Group.make "Outer" [ Group.Grp "Inner"; Group.Elem "o" ];
      Group.make "Inner" [ Group.Elem "i" ] ]
  in
  let t = Access.build ~elements:[ "i"; "o"; "g" ] ~groups in
  (* inner can reach outward to o and the global g. *)
  check Alcotest.bool "inner to sibling-of-parent" true
    (Access.may_enable t ~from_element:"i" ~to_element:"o" ~to_class:"K");
  check Alcotest.bool "inner to global" true
    (Access.may_enable t ~from_element:"i" ~to_element:"g" ~to_class:"K");
  (* o cannot reach into Inner. *)
  check Alcotest.bool "no reach into nested" false
    (Access.may_enable t ~from_element:"o" ~to_element:"i" ~to_class:"K")

let test_access_duplicate_group () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Access.build: duplicate group G")
    (fun () ->
      ignore (Access.build ~elements:[] ~groups:[ Group.make "G" []; Group.make "G" [] ]))

(* ------------------------------------------------------------------ *)
(* Legality                                                            *)
(* ------------------------------------------------------------------ *)

let tick_etype = Etype.make "Tick" ~events:[ { Etype.klass = "Tick"; schema = [] } ] ()

let test_legality_clean () =
  let spec = Spec.make "s" ~elements:[ ("X", tick_etype) ] () in
  let b = Build.create () in
  let t0 = Build.emit b ~element:"X" ~klass:"Tick" () in
  let _ = Build.emit_enabled_by b ~by:t0 ~element:"X" ~klass:"Tick" () in
  check Alcotest.bool "legal" true (Legality.is_legal spec (Build.finish b))

let test_legality_undeclared_element () =
  let spec = Spec.make "s" ~elements:[ ("X", tick_etype) ] () in
  let b = Build.create () in
  let _ = Build.emit b ~element:"Y" ~klass:"Tick" () in
  match Legality.check spec (Build.finish b) with
  | [ Legality.Undeclared_element "Y" ] -> ()
  | other -> Alcotest.failf "unexpected: %d violations" (List.length other)

let test_legality_undeclared_class () =
  let spec = Spec.make "s" ~elements:[ ("X", tick_etype) ] () in
  let b = Build.create () in
  let _ = Build.emit b ~element:"X" ~klass:"Boom" () in
  match Legality.check spec (Build.finish b) with
  | [ Legality.Undeclared_class 0 ] -> ()
  | _ -> Alcotest.fail "expected Undeclared_class"

let test_legality_bad_params () =
  let spec = Spec.make "s" ~elements:[ ("V", Etype.integer_variable) ] () in
  let b = Build.create () in
  let _ = Build.emit b ~element:"V" ~klass:"Assign" ~params:[ ("newval", V.Str "x") ] () in
  match Legality.check spec (Build.finish b) with
  | [ Legality.Bad_params 0 ] -> ()
  | _ -> Alcotest.fail "expected Bad_params"

let test_legality_cycle () =
  let spec = Spec.make "s" ~elements:[ ("X", tick_etype); ("Y", tick_etype) ] () in
  let b = Build.create () in
  let x = Build.emit b ~element:"X" ~klass:"Tick" () in
  let y = Build.emit b ~element:"Y" ~klass:"Tick" () in
  Build.enable b x y;
  Build.enable b y x;
  match Legality.check spec (Build.finish b) with
  | Legality.Cyclic_causality ws :: _ -> Alcotest.(check bool) "witness" true (List.length ws >= 2)
  | _ -> Alcotest.fail "expected Cyclic_causality"

let test_legality_access_violation () =
  let spec =
    Spec.make "s"
      ~elements:[ ("X", tick_etype); ("Hidden", tick_etype) ]
      ~groups:[ Group.make "G" [ Group.Elem "Hidden" ] ]
      ()
  in
  let b = Build.create () in
  let x = Build.emit b ~element:"X" ~klass:"Tick" () in
  let _ = Build.emit_enabled_by b ~by:x ~element:"Hidden" ~klass:"Tick" () in
  match Legality.check spec (Build.finish b) with
  | [ Legality.Access_violation (0, 1) ] -> ()
  | _ -> Alcotest.fail "expected Access_violation"

let test_legality_type_restriction_via_check () =
  (* A Getval returning a stale value is caught by the Variable type's own
     restriction (via Check, not Legality). *)
  let spec = Spec.make "s" ~elements:[ ("V", Etype.variable) ] () in
  let bad = Build.create () in
  let a = Build.emit bad ~element:"V" ~klass:"Assign" ~params:[ ("newval", V.Int 1) ] () in
  let _ =
    Build.emit_enabled_by bad ~by:a ~element:"V" ~klass:"Getval"
      ~params:[ ("oldval", V.Int 99) ] ()
  in
  let verdict = Gem_check.Check.check spec (Build.finish bad) in
  check Alcotest.bool "stale read rejected" false (Gem_check.Verdict.ok verdict)

(* ------------------------------------------------------------------ *)
(* Abbreviations                                                       *)
(* ------------------------------------------------------------------ *)

let chain_comp ?(skip_enable = false) () =
  let b = Build.create () in
  let a = Build.emit b ~element:"P" ~klass:"A" () in
  let x =
    if skip_enable then Build.emit b ~element:"P" ~klass:"B" ()
    else Build.emit_enabled_by b ~by:a ~element:"P" ~klass:"B" ()
  in
  ignore x;
  Build.finish b

let test_abbrev_prerequisite () =
  let f = Abbrev.prerequisite (F.Cls "A") (F.Cls "B") in
  check Alcotest.bool "holds" true (Eval.eval_computation (chain_comp ()) f);
  check Alcotest.bool "fails without enable" false
    (Eval.eval_computation (chain_comp ~skip_enable:true ()) f)

let test_abbrev_prerequisite_double_enable () =
  (* One A enabling two Bs violates "at most one". *)
  let b = Build.create () in
  let a = Build.emit b ~element:"P" ~klass:"A" () in
  let _ = Build.emit_enabled_by b ~by:a ~element:"P" ~klass:"B" () in
  let _ = Build.emit_enabled_by b ~by:a ~element:"Q" ~klass:"B" () in
  check Alcotest.bool "violated" false
    (Eval.eval_computation (Build.finish b) (Abbrev.prerequisite (F.Cls "A") (F.Cls "B")))

let test_abbrev_nondet_fork_join () =
  let b = Build.create () in
  let a = Build.emit b ~element:"P" ~klass:"A" () in
  let l = Build.emit_enabled_by b ~by:a ~element:"L" ~klass:"B" () in
  let r = Build.emit_enabled_by b ~by:a ~element:"R" ~klass:"C" () in
  let j = Build.emit_enabled_by b ~by:l ~element:"J" ~klass:"D" () in
  Build.enable b r j;
  let comp = Build.finish b in
  check Alcotest.bool "fork" true
    (Eval.eval_computation comp (Abbrev.fork (F.Cls "A") [ F.Cls "B"; F.Cls "C" ]));
  check Alcotest.bool "join" true
    (Eval.eval_computation comp (Abbrev.join [ F.Cls "B"; F.Cls "C" ] (F.Cls "D")));
  (* A join has TWO enablers from the set, so it is NOT a nondeterministic
     prerequisite (which demands exactly one). *)
  check Alcotest.bool "join is not nondet-prereq" false
    (Eval.eval_computation comp (Abbrev.nondet_prerequisite [ F.Cls "B"; F.Cls "C" ] (F.Cls "D")));
  check Alcotest.bool "chain" true
    (Eval.eval_computation comp (Abbrev.chain [ F.Cls "A"; F.Cls "B"; F.Cls "D" ]))

let test_abbrev_nondet_prerequisite () =
  (* Two D events, each enabled by exactly one event of {B, C}. *)
  let b = Build.create () in
  let bb = Build.emit b ~element:"P" ~klass:"B" () in
  let cc = Build.emit b ~element:"Q" ~klass:"C" () in
  let _ = Build.emit_enabled_by b ~by:bb ~element:"P" ~klass:"D" () in
  let _ = Build.emit_enabled_by b ~by:cc ~element:"Q" ~klass:"D" () in
  let comp = Build.finish b in
  check Alcotest.bool "holds" true
    (Eval.eval_computation comp (Abbrev.nondet_prerequisite [ F.Cls "B"; F.Cls "C" ] (F.Cls "D")))

let test_abbrev_message_passing () =
  let mk v_recv =
    let b = Build.create () in
    let s = Build.emit b ~element:"S" ~klass:"Send" ~params:[ ("msg", V.Int 5) ] () in
    let _ =
      Build.emit_enabled_by b ~by:s ~element:"R" ~klass:"Recv"
        ~params:[ ("got", V.Int v_recv) ] ()
    in
    Build.finish b
  in
  let f =
    Abbrev.message_passing ~send:(F.Cls "Send") ~receive:(F.Cls "Recv") ~send_param:"msg"
      ~receive_param:"got"
  in
  check Alcotest.bool "values equal" true (Eval.eval_computation (mk 5) f);
  check Alcotest.bool "corrupted" false (Eval.eval_computation (mk 6) f)

let test_abbrev_priority_direct () =
  (* Two transactions labelled by a thread; the high-priority one pends
     while the low one starts first: the priority restriction must fail on
     that run, and pass when the high one is serviced first. *)
  let build hi_first =
    let b = Build.create () in
    let rh = Build.emit b ~element:"P1" ~klass:"ReqHi" () in
    let rl = Build.emit b ~element:"P2" ~klass:"ReqLo" () in
    let sh = Build.emit_enabled_by b ~by:rh ~element:"P1" ~klass:"StartHi" () in
    let sl = Build.emit_enabled_by b ~by:rl ~element:"P2" ~klass:"StartLo" () in
    (* Serialize the starts at a control element via enables. *)
    if hi_first then Build.enable b sh sl else Build.enable b sl sh;
    Build.finish b
  in
  let thread_defs =
    [ Thread.def "pi"
        (Thread.Alt
           [ Thread.seq_of_domains [ F.Cls "ReqHi"; F.Cls "StartHi" ];
             Thread.seq_of_domains [ F.Cls "ReqLo"; F.Cls "StartLo" ] ]) ]
  in
  let prio =
    Abbrev.priority ~thread:"pi" ~req_hi:(F.Cls "ReqHi") ~start_hi:(F.Cls "StartHi")
      ~req_lo:(F.Cls "ReqLo") ~start_lo:(F.Cls "StartLo")
  in
  let holds comp =
    let comp = Thread.label comp thread_defs in
    List.for_all (fun run -> Eval.eval_run run prio) (Gem_logic.Vhs.all comp)
  in
  check Alcotest.bool "hi first satisfies" true (holds (build true));
  check Alcotest.bool "lo first violates" false (holds (build false))

(* ------------------------------------------------------------------ *)
(* Threads                                                             *)
(* ------------------------------------------------------------------ *)

let thread_comp () =
  (* Two interleaved transactions A -> B -> C on separate elements, with a
     shared element ordering the Bs. *)
  let b = Build.create () in
  let a1 = Build.emit b ~element:"P1" ~klass:"A" () in
  let a2 = Build.emit b ~element:"P2" ~klass:"A" () in
  let b1 = Build.emit_enabled_by b ~by:a1 ~element:"M" ~klass:"B" () in
  let b2 = Build.emit_enabled_by b ~by:a2 ~element:"M" ~klass:"B" () in
  let c1 = Build.emit_enabled_by b ~by:b1 ~element:"P1" ~klass:"C" () in
  let c2 = Build.emit_enabled_by b ~by:b2 ~element:"P2" ~klass:"C" () in
  (Build.finish b, a1, a2, b1, b2, c1, c2)

let pi = Thread.def "pi" (Thread.seq_of_domains [ F.Cls "A"; F.Cls "B"; F.Cls "C" ])

let test_thread_labelling () =
  let comp, a1, a2, b1, b2, c1, c2 = thread_comp () in
  let comp = Thread.label comp [ pi ] in
  let inst h = Gem_model.Event.thread_instance (C.event comp h) "pi" in
  check Alcotest.(list int) "two instances" [ 0; 1 ] (Thread.instances comp "pi");
  check Alcotest.bool "a1-b1-c1 same" true (inst a1 = inst b1 && inst b1 = inst c1);
  check Alcotest.bool "a2-b2-c2 same" true (inst a2 = inst b2 && inst b2 = inst c2);
  check Alcotest.bool "distinct" true (inst a1 <> inst a2);
  let i1 = Option.get (inst a1) in
  check Alcotest.(list int) "events of instance" [ a1; b1; c1 ]
    (Thread.events_of_instance comp "pi" i1)

let test_thread_alternation () =
  let def =
    Thread.def "t" (Thread.Alt [ Thread.seq_of_domains [ F.Cls "A"; F.Cls "B" ];
                                 Thread.seq_of_domains [ F.Cls "X"; F.Cls "Y" ] ])
  in
  let b = Build.create () in
  let a = Build.emit b ~element:"P" ~klass:"A" () in
  let bb = Build.emit_enabled_by b ~by:a ~element:"P" ~klass:"B" () in
  let x = Build.emit b ~element:"Q" ~klass:"X" () in
  let y = Build.emit_enabled_by b ~by:x ~element:"Q" ~klass:"Y" () in
  let comp = Thread.label (Build.finish b) [ def ] in
  let inst h = Gem_model.Event.thread_instance (C.event comp h) "t" in
  check Alcotest.bool "A-branch labelled" true (inst a <> None && inst a = inst bb);
  check Alcotest.bool "X-branch labelled" true (inst x <> None && inst x = inst y);
  check Alcotest.bool "branches distinct" true (inst a <> inst x)

let test_thread_star_opt () =
  let def =
    Thread.def "t"
      (Thread.Seq [ Thread.Step (F.Cls "A"); Thread.Star (Thread.Step (F.Cls "M"));
                    Thread.Opt (Thread.Step (F.Cls "O")); Thread.Step (F.Cls "Z") ])
  in
  let b = Build.create () in
  let a = Build.emit b ~element:"P" ~klass:"A" () in
  let m1 = Build.emit_enabled_by b ~by:a ~element:"P" ~klass:"M" () in
  let m2 = Build.emit_enabled_by b ~by:m1 ~element:"P" ~klass:"M" () in
  let z = Build.emit_enabled_by b ~by:m2 ~element:"P" ~klass:"Z" () in
  let comp = Thread.label (Build.finish b) [ def ] in
  let inst h = Gem_model.Event.thread_instance (C.event comp h) "t" in
  check Alcotest.bool "star consumed" true
    (inst a = inst m1 && inst m1 = inst m2 && inst m2 = inst z && inst a <> None)

let test_thread_chain_breaks () =
  (* A B with no enable edge: B starts nothing and continues nothing. *)
  let b = Build.create () in
  let a = Build.emit b ~element:"P" ~klass:"A" () in
  let bb = Build.emit b ~element:"Q" ~klass:"B" () in
  let comp = Thread.label (Build.finish b) [ pi ] in
  let inst h = Gem_model.Event.thread_instance (C.event comp h) "pi" in
  check Alcotest.bool "a labelled" true (inst a <> None);
  check Alcotest.bool "b unlabelled" true (inst bb = None)

(* ------------------------------------------------------------------ *)
(* Spec assembly                                                       *)
(* ------------------------------------------------------------------ *)

let test_spec_merge () =
  let f1 = Spec.make "f1" ~elements:[ ("X", tick_etype) ] ~restrictions:[ ("r1", F.True) ] () in
  let f2 = Spec.make "f2" ~elements:[ ("Y", tick_etype); ("X", tick_etype) ]
      ~restrictions:[ ("r2", F.True) ] () in
  let m = Spec.merge "m" [ f1; f2 ] in
  check Alcotest.(list string) "elements dedup" [ "X"; "Y" ] (Spec.declared_elements m);
  check Alcotest.int "restrictions" 2 (List.length m.Spec.restrictions)

let test_spec_merge_conflicts () =
  let t2 = Etype.make "Other" ~events:[] () in
  let f1 = Spec.make "f1" ~elements:[ ("X", tick_etype) ] () in
  let f2 = Spec.make "f2" ~elements:[ ("X", t2) ] () in
  Alcotest.check_raises "type clash"
    (Invalid_argument "Spec.merge: element X declared with two types") (fun () ->
      ignore (Spec.merge "m" [ f1; f2 ]))

let test_spec_type_restrictions () =
  let s = Spec.make "s" ~elements:[ ("V", Etype.variable); ("W", Etype.variable) ] () in
  let rs = Spec.type_restrictions s in
  check Alcotest.int "one per instance" 2 (List.length rs);
  check Alcotest.bool "instantiated name" true
    (List.mem_assoc "V.getval-yields-last-assigned" rs);
  check Alcotest.int "restriction_count" 2 (Spec.restriction_count s)

let () =
  Alcotest.run "gem_spec"
    [
      ( "etype",
        [
          Alcotest.test_case "decls" `Quick test_etype_decls;
          Alcotest.test_case "schema" `Quick test_etype_schema;
          Alcotest.test_case "refine" `Quick test_etype_refine;
        ] );
      ( "access",
        [
          Alcotest.test_case "paper-table" `Quick test_access_paper_table;
          Alcotest.test_case "ports" `Quick test_access_ports;
          Alcotest.test_case "nested" `Quick test_access_nested;
          Alcotest.test_case "duplicate-group" `Quick test_access_duplicate_group;
        ] );
      ( "legality",
        [
          Alcotest.test_case "clean" `Quick test_legality_clean;
          Alcotest.test_case "undeclared-element" `Quick test_legality_undeclared_element;
          Alcotest.test_case "undeclared-class" `Quick test_legality_undeclared_class;
          Alcotest.test_case "bad-params" `Quick test_legality_bad_params;
          Alcotest.test_case "cycle" `Quick test_legality_cycle;
          Alcotest.test_case "access-violation" `Quick test_legality_access_violation;
          Alcotest.test_case "type-restriction" `Quick test_legality_type_restriction_via_check;
        ] );
      ( "abbrev",
        [
          Alcotest.test_case "prerequisite" `Quick test_abbrev_prerequisite;
          Alcotest.test_case "double-enable" `Quick test_abbrev_prerequisite_double_enable;
          Alcotest.test_case "fork-join-nondet" `Quick test_abbrev_nondet_fork_join;
          Alcotest.test_case "nondet-prerequisite" `Quick test_abbrev_nondet_prerequisite;
          Alcotest.test_case "message-passing" `Quick test_abbrev_message_passing;
          Alcotest.test_case "priority-direct" `Quick test_abbrev_priority_direct;
        ] );
      ( "thread",
        [
          Alcotest.test_case "labelling" `Quick test_thread_labelling;
          Alcotest.test_case "alternation" `Quick test_thread_alternation;
          Alcotest.test_case "star-opt" `Quick test_thread_star_opt;
          Alcotest.test_case "chain-breaks" `Quick test_thread_chain_breaks;
        ] );
      ( "spec",
        [
          Alcotest.test_case "merge" `Quick test_spec_merge;
          Alcotest.test_case "merge-conflicts" `Quick test_spec_merge_conflicts;
          Alcotest.test_case "type-restrictions" `Quick test_spec_type_restrictions;
        ] );
    ]
