(* Unit tests for the language-substrate core: expressions, the persistent
   trace builder, and the generic explorer (bounds, deadlock vs completion,
   keyed partial-order reduction). *)

module E = Gem_lang.Expr
module Trace = Gem_lang.Trace
module Explore = Gem_lang.Explore
module V = Gem_model.Value
module C = Gem_model.Computation

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let test_expr_arith () =
  let store = [ ("x", V.Int 10); ("y", V.Int 3) ] in
  check Alcotest.int "add" 13 (E.eval_int store (E.Add (E.Var "x", E.Var "y")));
  check Alcotest.int "sub" 7 (E.eval_int store (E.Sub (E.Var "x", E.Var "y")));
  check Alcotest.int "mul" 30 (E.eval_int store (E.Mul (E.Var "x", E.Var "y")));
  check Alcotest.int "div" 3 (E.eval_int store (E.Div (E.Var "x", E.Var "y")));
  check Alcotest.int "mod" 1 (E.eval_int store (E.Mod (E.Var "x", E.Var "y")));
  check Alcotest.int "neg" (-10) (E.eval_int store (E.Neg (E.Var "x")))

let test_expr_bool () =
  let store = [ ("x", V.Int 1); ("b", V.Bool true) ] in
  check Alcotest.bool "lt" true (E.eval_bool store (E.Lt (E.Var "x", E.Int 2)));
  check Alcotest.bool "and" true
    (E.eval_bool store (E.And (E.Var "b", E.Ge (E.Var "x", E.Int 1))));
  check Alcotest.bool "or short" true (E.eval_bool store (E.Or (E.Var "b", E.Var "b")));
  check Alcotest.bool "not" false (E.eval_bool store (E.Not (E.Var "b")));
  check Alcotest.bool "eq mixed" false
    (E.eval_bool store (E.Eq (E.Var "x", E.Var "b")));
  check Alcotest.bool "ne" true (E.eval_bool store (E.Ne (E.Var "x", E.Int 2)))

let test_expr_lists () =
  let store = [ ("l", V.List [ V.Int 1; V.Int 2 ]) ] in
  check Alcotest.int "len" 2 (E.eval_int store (E.Len (E.Var "l")));
  check Alcotest.int "head" 1 (E.eval_int store (E.Head (E.Var "l")));
  check Alcotest.int "len tail" 1 (E.eval_int store (E.Len (E.Tail (E.Var "l"))));
  check Alcotest.int "append" 3
    (E.eval_int store (E.Len (E.Append (E.Var "l", E.Int 9))));
  check Alcotest.bool "nil" true (E.eval_bool [] (E.Eq (E.Nil, E.Nil)))

let test_expr_errors () =
  let expect_error f =
    try
      ignore (f ());
      Alcotest.fail "expected Eval_error"
    with E.Eval_error _ -> ()
  in
  expect_error (fun () -> E.eval [] (E.Var "missing"));
  expect_error (fun () -> E.eval [] (E.Div (E.Int 1, E.Int 0)));
  expect_error (fun () -> E.eval [] (E.Add (E.Int 1, E.Bool true)));
  expect_error (fun () -> E.eval [] (E.Head E.Nil));
  expect_error (fun () -> E.eval [] (E.Queue_non_empty "c"));
  expect_error (fun () -> E.eval [] (E.Queue_length "c"))

let test_expr_queue_callbacks () =
  let queue_test c = String.equal c "busy" in
  let queue_len c = if String.equal c "busy" then 2 else 0 in
  check Alcotest.bool "queue()" true
    (E.eval_bool ~queue_test ~queue_len [] (E.Queue_non_empty "busy"));
  check Alcotest.int "queue_length()" 2
    (E.eval_int ~queue_test ~queue_len [] (E.Queue_length "busy"));
  check Alcotest.int "empty queue" 0
    (E.eval_int ~queue_test ~queue_len [] (E.Queue_length "idle"))

let test_expr_reads () =
  let e = E.Add (E.Var "a", E.Mul (E.Var "b", E.Var "a")) in
  check Alcotest.(list string) "reads dedup, order" [ "a"; "b" ] (E.reads e);
  check Alcotest.(list string) "no reads" [] (E.reads (E.Int 3))

let test_expr_update_shadowing () =
  let store = E.update (E.update [] "x" (V.Int 1)) "x" (V.Int 2) in
  check Alcotest.int "latest wins" 2 (V.as_int (E.lookup store "x"));
  check Alcotest.int "no duplicates" 1 (List.length store)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_persistence () =
  let t0 = Trace.empty in
  let a, t1 = Trace.emit t0 ~element:"X" ~klass:"K" () in
  let _b, t2a = Trace.emit t1 ~element:"X" ~klass:"K" () in
  let _c, t2b = Trace.emit t1 ~element:"Y" ~klass:"K" () in
  (* Branching from t1: both branches see [a] but not each other. *)
  let ca = Trace.to_computation t2a in
  let cb = Trace.to_computation t2b in
  check Alcotest.int "branch a" 2 (C.n_events ca);
  check Alcotest.int "branch b" 2 (C.n_events cb);
  check Alcotest.int "X events in a" 2 (List.length (C.events_at ca "X"));
  check Alcotest.int "X events in b" 1 (List.length (C.events_at cb "X"));
  ignore a

let test_trace_indices_and_edges () =
  let t = Trace.empty in
  let a, t = Trace.emit t ~element:"X" ~klass:"K" () in
  let b, t = Trace.emit_after t ~after:(Some a) ~element:"X" ~klass:"K" () in
  let comp = Trace.to_computation t in
  check Alcotest.bool "enable edge" true (C.enables comp a b);
  check Alcotest.int "indices" 1 (C.event comp b).Gem_model.Event.id.index;
  check Alcotest.int "count" 2 (Trace.n_events t)

let test_trace_rejects_bad_edges () =
  let t = Trace.empty in
  let a, t = Trace.emit t ~element:"X" ~klass:"K" () in
  Alcotest.check_raises "self" (Invalid_argument "Trace.enable: self-enable") (fun () ->
      ignore (Trace.enable t a a));
  Alcotest.check_raises "unknown" (Invalid_argument "Trace.enable: bad handle") (fun () ->
      ignore (Trace.enable t a 99))

let test_trace_extra_elements () =
  let t = Trace.empty in
  let _, t = Trace.emit t ~element:"X" ~klass:"K" () in
  let comp = Trace.to_computation ~extra_elements:[ "Idle"; "X" ] t in
  check Alcotest.(list string) "declared" [ "X"; "Idle" ] (C.elements comp)

let test_trace_actor () =
  let t = Trace.empty in
  let a, t = Trace.emit t ~actor:"P" ~element:"X" ~klass:"K" () in
  let comp = Trace.to_computation t in
  check Alcotest.(option string) "actor kept" (Some "P") (C.event comp a).Gem_model.Event.actor

(* ------------------------------------------------------------------ *)
(* Explore                                                             *)
(* ------------------------------------------------------------------ *)

(* A counter system: from n, moves to n+1 and n+2, terminal at >= 4;
   terminated iff exactly 4. *)
let counter_moves n = if n >= 4 then [] else [ n + 1; n + 2 ]

let test_explore_classification () =
  let r = Explore.run ~moves:counter_moves ~terminated:(fun n -> n = 4) 0 in
  check Alcotest.bool "completed nonempty" true (r.Explore.completed <> []);
  check Alcotest.bool "deadlocked nonempty" true (r.Explore.deadlocked <> []);
  check Alcotest.bool "all completed are 4" true (List.for_all (fun n -> n = 4) r.Explore.completed);
  check Alcotest.bool "all deadlocked are 5" true (List.for_all (fun n -> n = 5) r.Explore.deadlocked)

let test_explore_budget () =
  (* Exhaustion no longer raises: the result reports the cut and keeps the
     configurations visited so far. *)
  let r = Explore.run ~max_configs:5 ~moves:counter_moves ~terminated:(fun n -> n = 4) 0 in
  check Alcotest.bool "exhausted = Config_budget" true
    (r.Explore.exhausted = Some Gem_check.Budget.Config_budget);
  check Alcotest.int "visited exactly the budget" 5 r.Explore.explored

let test_explore_deadline () =
  (* A deadline of zero is exhausted on the first poll; no exception, and
     the reason survives into the result. *)
  let budget = Gem_check.Budget.make ~timeout:0.0 () in
  let moves n = [ n + 1 ] (* infinite chain; only the budget stops it *) in
  let r = Explore.run ~budget ~moves ~terminated:(fun _ -> false) 0 in
  check Alcotest.bool "exhausted = Deadline_exceeded" true
    (r.Explore.exhausted = Some Gem_check.Budget.Deadline_exceeded)

let test_explore_depth_truncation () =
  let r =
    Explore.run ~max_steps:1 ~moves:counter_moves ~terminated:(fun n -> n = 4) 0
  in
  check Alcotest.bool "truncated" true (r.Explore.truncated > 0)

let test_explore_key_dedup () =
  (* Without a key, the counter reaches 4 along many paths; with the
     identity key, each value is expanded once. *)
  let no_key = Explore.run ~moves:counter_moves ~terminated:(fun n -> n = 4) 0 in
  let keyed =
    Explore.run
      ~key:(fun n -> Explore.Exact (string_of_int n))
      ~moves:counter_moves ~terminated:(fun n -> n = 4) 0
  in
  check Alcotest.bool "fewer configs with key" true
    (keyed.Explore.explored < no_key.Explore.explored);
  check Alcotest.int "one completed leaf" 1 (List.length keyed.Explore.completed)

let test_explore_initial_seen () =
  (* Regression: the initial configuration must be inserted into the seen
     set before expansion, so a move mapping the start state to itself is
     pruned rather than re-expanded. *)
  let moves n = if n = 0 then [ 0 ] else [] in
  let r =
    Explore.run
      ~key:(fun n -> Explore.Exact (string_of_int n))
      ~moves ~terminated:(fun _ -> false) 0
  in
  check Alcotest.int "expanded exactly once" 1 r.Explore.explored;
  check Alcotest.int "self-loop pruned" 1 r.Explore.reduced

let test_explore_sleep_sets () =
  (* Two independent moves a/b from (0,0): the sleep set prunes one of the
     two interleavings, and the one completed leaf survives. *)
  let footprint (a, b) =
    (if a < 1 then [ ({ Explore.label = "a"; touches = [ "A" ] }, (a + 1, b)) ] else [])
    @ if b < 1 then [ ({ Explore.label = "b"; touches = [ "B" ] }, (a, b + 1)) ] else []
  in
  let moves c = List.map snd (footprint c) in
  let key (a, b) = Explore.Exact (Printf.sprintf "%d,%d" a b) in
  let r =
    Explore.run ~key ~footprint ~moves ~terminated:(fun c -> c = (1, 1)) (0, 0)
  in
  check Alcotest.(list (pair int int)) "one completed leaf" [ (1, 1) ] r.Explore.completed;
  check Alcotest.(list (pair int int)) "no deadlocks" [] r.Explore.deadlocked;
  check Alcotest.bool "a branch was pruned" true (r.Explore.reduced > 0)

let test_move_independence () =
  let m touches = { Explore.label = "m"; touches } in
  check Alcotest.bool "disjoint" true (Explore.independent (m [ "A" ]) (m [ "B" ]));
  check Alcotest.bool "overlap" false
    (Explore.independent (m [ "A"; "C" ]) (m [ "B"; "C" ]));
  check Alcotest.bool "empty footprint" true (Explore.independent (m []) (m [ "A" ]))

let test_fingerprint_order_independent () =
  let build order =
    let t = Trace.empty in
    let t =
      List.fold_left
        (fun t el -> snd (Trace.emit t ~element:el ~klass:"K" ()))
        t order
    in
    Trace.to_computation t
  in
  (* Emission order differs; events and (empty) edges identical. *)
  check Alcotest.string "same fingerprint"
    (Explore.fingerprint (build [ "A"; "B" ]))
    (Explore.fingerprint (build [ "B"; "A" ]));
  (* Different event content differs. *)
  Alcotest.(check bool) "different fingerprint" false
    (String.equal
       (Explore.fingerprint (build [ "A"; "A" ]))
       (Explore.fingerprint (build [ "A"; "B" ])))

let test_dedup_computations () =
  let comps =
    Explore.dedup_computations
      (fun order ->
        let t = Trace.empty in
        let t =
          List.fold_left (fun t el -> snd (Trace.emit t ~element:el ~klass:"K" ())) t order
        in
        Trace.to_computation t)
      [ [ "A"; "B" ]; [ "B"; "A" ]; [ "A"; "C" ] ]
  in
  check Alcotest.int "two distinct partial orders" 2 (List.length comps)

let () =
  Alcotest.run "gem_lang_core"
    [
      ( "expr",
        [
          Alcotest.test_case "arith" `Quick test_expr_arith;
          Alcotest.test_case "bool" `Quick test_expr_bool;
          Alcotest.test_case "lists" `Quick test_expr_lists;
          Alcotest.test_case "errors" `Quick test_expr_errors;
          Alcotest.test_case "queue-callbacks" `Quick test_expr_queue_callbacks;
          Alcotest.test_case "reads" `Quick test_expr_reads;
          Alcotest.test_case "update" `Quick test_expr_update_shadowing;
        ] );
      ( "trace",
        [
          Alcotest.test_case "persistence" `Quick test_trace_persistence;
          Alcotest.test_case "indices-edges" `Quick test_trace_indices_and_edges;
          Alcotest.test_case "bad-edges" `Quick test_trace_rejects_bad_edges;
          Alcotest.test_case "extra-elements" `Quick test_trace_extra_elements;
          Alcotest.test_case "actor" `Quick test_trace_actor;
        ] );
      ( "explore",
        [
          Alcotest.test_case "classification" `Quick test_explore_classification;
          Alcotest.test_case "budget" `Quick test_explore_budget;
          Alcotest.test_case "deadline" `Quick test_explore_deadline;
          Alcotest.test_case "depth-truncation" `Quick test_explore_depth_truncation;
          Alcotest.test_case "key-dedup" `Quick test_explore_key_dedup;
          Alcotest.test_case "initial-seen" `Quick test_explore_initial_seen;
          Alcotest.test_case "sleep-sets" `Quick test_explore_sleep_sets;
          Alcotest.test_case "independence" `Quick test_move_independence;
          Alcotest.test_case "fingerprint" `Quick test_fingerprint_order_independent;
          Alcotest.test_case "dedup-computations" `Quick test_dedup_computations;
        ] );
    ]
