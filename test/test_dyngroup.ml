(* Tests for dynamic group structures (paper footnote 5) and for the
   generic Relation module. *)

module Group = Gem_model.Group
module Build = Gem_model.Build
module V = Gem_model.Value
module Etype = Gem_spec.Etype
module Spec = Gem_spec.Spec
module Dyngroup = Gem_spec.Dyngroup

let check = Alcotest.check

let tick = Etype.make "Tick" ~events:[ { Etype.klass = "Tick"; schema = [] } ] ()

let base_spec ?(groups = []) () =
  Spec.make "dyn"
    ~elements:
      [
        ("A", tick); ("B", tick);
        (Dyngroup.structure_element, Dyngroup.etype);
      ]
    ~groups ()

(* B starts hidden inside group G; a structure event adds A to G, after
   which A may enable B. *)
let test_access_granted_by_change () =
  let spec = base_spec ~groups:[ Group.make "G" [ Group.Elem "B" ] ] () in
  let b = Build.create () in
  let s =
    Build.emit b ~element:Dyngroup.structure_element ~klass:"AddElem"
      ~params:[ ("group", V.Str "G"); ("element", V.Str "A") ] ()
  in
  let a = Build.emit_enabled_by b ~by:s ~element:"A" ~klass:"Tick" () in
  let _ = Build.emit_enabled_by b ~by:a ~element:"B" ~klass:"Tick" () in
  let comp = Build.finish b in
  (* Statically illegal (A outside G)... *)
  check Alcotest.bool "static check rejects" false (Gem_spec.Legality.is_legal spec comp);
  (* ...but dynamically legal: the membership change precedes the enable. *)
  check Alcotest.int "dynamic check accepts" 0
    (List.length (Dyngroup.check_access spec comp))

let test_access_denied_before_change () =
  let spec = base_spec ~groups:[ Group.make "G" [ Group.Elem "B" ] ] () in
  let b = Build.create () in
  (* The enable happens with no structure change before it. *)
  let a = Build.emit b ~element:"A" ~klass:"Tick" () in
  let bt = Build.emit_enabled_by b ~by:a ~element:"B" ~klass:"Tick" () in
  (* A concurrent (not temporally prior) change does not help. *)
  let _ =
    Build.emit b ~element:Dyngroup.structure_element ~klass:"AddElem"
      ~params:[ ("group", V.Str "G"); ("element", V.Str "A") ] ()
  in
  let comp = Build.finish b in
  check Alcotest.(list (pair int int)) "edge rejected" [ (a, bt) ]
    (Dyngroup.check_access spec comp)

let test_access_revoked_by_removal () =
  let spec = base_spec ~groups:[ Group.make "G" [ Group.Elem "A"; Group.Elem "B" ] ] () in
  let b = Build.create () in
  let s =
    Build.emit b ~element:Dyngroup.structure_element ~klass:"RemoveElem"
      ~params:[ ("group", V.Str "G"); ("element", V.Str "A") ] ()
  in
  let a = Build.emit_enabled_by b ~by:s ~element:"A" ~klass:"Tick" () in
  let bt = Build.emit_enabled_by b ~by:a ~element:"B" ~klass:"Tick" () in
  let comp = Build.finish b in
  check Alcotest.(list (pair int int)) "revoked" [ (a, bt) ]
    (Dyngroup.check_access spec comp)

let test_new_group_and_port () =
  let spec = base_spec () in
  let b = Build.create () in
  let s1 =
    Build.emit b ~element:Dyngroup.structure_element ~klass:"NewGroup"
      ~params:[ ("name", V.Str "H") ] ()
  in
  let s2 =
    Build.emit_enabled_by b ~by:s1 ~element:Dyngroup.structure_element ~klass:"AddElem"
      ~params:[ ("group", V.Str "H"); ("element", V.Str "B") ] ()
  in
  (* B hidden in H: A -> B illegal until a port is declared. *)
  let a = Build.emit_enabled_by b ~by:s2 ~element:"A" ~klass:"Tick" () in
  let bt = Build.emit_enabled_by b ~by:a ~element:"B" ~klass:"Tick" () in
  let comp = Build.finish b in
  check Alcotest.(list (pair int int)) "hidden by new group" [ (a, bt) ]
    (Dyngroup.check_access spec comp);
  (* Same computation plus an AddPort before the enable: legal. *)
  let b = Build.create () in
  let s1 =
    Build.emit b ~element:Dyngroup.structure_element ~klass:"NewGroup"
      ~params:[ ("name", V.Str "H") ] ()
  in
  let s2 =
    Build.emit_enabled_by b ~by:s1 ~element:Dyngroup.structure_element ~klass:"AddElem"
      ~params:[ ("group", V.Str "H"); ("element", V.Str "B") ] ()
  in
  let s3 =
    Build.emit_enabled_by b ~by:s2 ~element:Dyngroup.structure_element ~klass:"AddPort"
      ~params:
        [ ("group", V.Str "H"); ("element", V.Str "B"); ("class", V.Str "Tick") ]
      ()
  in
  let a = Build.emit_enabled_by b ~by:s3 ~element:"A" ~klass:"Tick" () in
  let _ = Build.emit_enabled_by b ~by:a ~element:"B" ~klass:"Tick" () in
  check Alcotest.int "port opens access" 0
    (List.length (Dyngroup.check_access spec (Build.finish b)))

let test_delete_group_releases () =
  let spec = base_spec ~groups:[ Group.make "G" [ Group.Elem "B" ] ] () in
  let b = Build.create () in
  let s =
    Build.emit b ~element:Dyngroup.structure_element ~klass:"DeleteGroup"
      ~params:[ ("name", V.Str "G") ] ()
  in
  let a = Build.emit_enabled_by b ~by:s ~element:"A" ~klass:"Tick" () in
  let _ = Build.emit_enabled_by b ~by:a ~element:"B" ~klass:"Tick" () in
  check Alcotest.int "orphaned B reachable" 0
    (List.length (Dyngroup.check_access spec (Build.finish b)))

(* ------------------------------------------------------------------ *)
(* Relation                                                            *)
(* ------------------------------------------------------------------ *)

module R = Gem_order.Relation.Make (String)

let test_relation_basics () =
  let r = R.of_list [ ("a", "b"); ("b", "c") ] in
  check Alcotest.bool "mem" true (R.mem "a" "b" r);
  check Alcotest.bool "not mem" false (R.mem "a" "c" r);
  check Alcotest.int "cardinal" 2 (R.cardinal r);
  check Alcotest.(list string) "domain" [ "a"; "b" ] (R.domain r);
  check Alcotest.(list string) "range" [ "b"; "c" ] (R.range r);
  check Alcotest.(list string) "successors" [ "b" ] (R.successors "a" r)

let test_relation_closure () =
  let r = R.of_list [ ("a", "b"); ("b", "c"); ("c", "d") ] in
  let c = R.transitive_closure r in
  check Alcotest.bool "a->d" true (R.mem "a" "d" c);
  check Alcotest.bool "closure transitive" true (R.is_transitive c);
  check Alcotest.bool "base not transitive" false (R.is_transitive r);
  check Alcotest.bool "strict order" true (R.is_strict_order c)

let test_relation_ops () =
  let r = R.of_list [ ("a", "b"); ("b", "a") ] in
  check Alcotest.bool "not antisymmetric" false (R.is_antisymmetric r);
  check Alcotest.bool "irreflexive" true (R.is_irreflexive r);
  check Alcotest.bool "reflexive pair" false (R.is_irreflexive (R.add "x" "x" r));
  let inv = R.inverse (R.of_list [ ("a", "b") ]) in
  check Alcotest.bool "inverse" true (R.mem "b" "a" inv);
  let comp = R.compose (R.of_list [ ("a", "b") ]) (R.of_list [ ("b", "c") ]) in
  check Alcotest.(list (pair string string)) "compose" [ ("a", "c") ] (R.to_list comp);
  let sub = R.restrict (fun x -> x <> "b") (R.of_list [ ("a", "b"); ("a", "c") ]) in
  check Alcotest.(list (pair string string)) "restrict" [ ("a", "c") ] (R.to_list sub);
  let mapped = R.map String.uppercase_ascii (R.of_list [ ("a", "b") ]) in
  check Alcotest.bool "map" true (R.mem "A" "B" mapped);
  check Alcotest.bool "subrelation" true
    (R.subrelation (R.of_list [ ("a", "b") ]) (R.of_list [ ("a", "b"); ("c", "d") ]));
  check Alcotest.(list (pair string string)) "identity" [ ("x", "x") ]
    (R.to_list (R.reflexive_over [ "x" ]))

let () =
  Alcotest.run "gem_dyngroup"
    [
      ( "dyngroup",
        [
          Alcotest.test_case "granted-by-change" `Quick test_access_granted_by_change;
          Alcotest.test_case "denied-before-change" `Quick test_access_denied_before_change;
          Alcotest.test_case "revoked-by-removal" `Quick test_access_revoked_by_removal;
          Alcotest.test_case "new-group-and-port" `Quick test_new_group_and_port;
          Alcotest.test_case "delete-group" `Quick test_delete_group_releases;
        ] );
      ( "relation",
        [
          Alcotest.test_case "basics" `Quick test_relation_basics;
          Alcotest.test_case "closure" `Quick test_relation_closure;
          Alcotest.test_case "ops" `Quick test_relation_ops;
        ] );
    ]
