(* Differential parity suite for domain-parallel exploration: every
   lib/problems workload explored at jobs in {1, 2, 8} must produce
   identical completed/deadlocked fingerprint multisets, the same
   exhaustion status, and byte-identical rendered verdicts as the
   sequential walk — with POR on and with it off. Parallel traversal
   order is scheduler-dependent, so these assertions are exactly the
   determinism contract of Explore.run's canonical merge: sorted leaves
   (canonical key) and fingerprint-sorted deduplication make the
   verdict-relevant outcome independent of who explored what.

   qcheck extends the evidence to random loop-free CSP programs, reusing
   the generators of the fuzzing library (Gem_fuzz.Gen).

   The explored/reduced counters are NOT compared across job counts:
   domains race to claim states, so duplicate claims (counted in
   explored) and prune opportunities (counted in reduced) legitimately
   differ from run to run. Only the verdict-relevant content is stable. *)

module Explore = Gem_lang.Explore
module Monitor = Gem_lang.Monitor
module Csp = Gem_lang.Csp
module Ada = Gem_lang.Ada
module RW = Gem_problems.Readers_writers
module Buffer = Gem_problems.Buffer
module Rwd = Gem_problems.Rw_distributed
module Db = Gem_problems.Db_update
module Budget = Gem_check.Budget
module Par = Gem_check.Par
module Refine = Gem_check.Refine
module Verdict = Gem_check.Verdict
module Strategy = Gem_check.Strategy
module Gen_csp = Gem_fuzz.Gen

let check = Alcotest.check
let strategy = Strategy.Linearizations (Some 200)
let job_counts = [ 2; 8 ]

(* Sorted fingerprint multiset of a list of computations. *)
let fps comps = List.sort compare (List.map Explore.fingerprint comps)
let reason_opt = Option.map Budget.reason_keyword

(* ------------------------------------------------------------------ *)
(* Workload parity: jobs in {2, 8} vs sequential, POR on and off       *)
(* ------------------------------------------------------------------ *)

let assert_parity name run =
  List.iter
    (fun por ->
      let c1, d1, x1 = run ~por ~jobs:1 in
      List.iter
        (fun jobs ->
          let cn, dn, xn = run ~por ~jobs in
          let tag =
            Printf.sprintf "%s por=%b jobs=%d" name por jobs
          in
          check Alcotest.(list string) (tag ^ ": completed multiset") (fps c1) (fps cn);
          check Alcotest.(list string) (tag ^ ": deadlock multiset") (fps d1) (fps dn);
          check
            Alcotest.(option string)
            (tag ^ ": exhaustion") (reason_opt x1) (reason_opt xn))
        job_counts)
    [ true; false ]

let mon_parity name prog =
  assert_parity name (fun ~por ~jobs ->
      let o = Monitor.explore ~por ~jobs prog in
      (o.Monitor.computations, o.Monitor.deadlocks, o.Monitor.exhausted))

let csp_parity name prog =
  assert_parity name (fun ~por ~jobs ->
      let o = Csp.explore ~por ~jobs prog in
      (o.Csp.computations, o.Csp.deadlocks, o.Csp.exhausted))

let ada_parity name prog =
  assert_parity name (fun ~por ~jobs ->
      let o = Ada.explore ~por ~jobs prog in
      (o.Ada.computations, o.Ada.deadlocks, o.Ada.exhausted))

let test_rw_monitor_workloads () =
  mon_parity "rw-paper-1r1w" (RW.program ~monitor:RW.paper_monitor ~readers:1 ~writers:1);
  mon_parity "rw-no-exclusion-2r1w"
    (RW.program ~monitor:RW.no_exclusion_monitor ~readers:2 ~writers:1);
  mon_parity "rw-buggy-1r2w" (RW.program ~monitor:RW.buggy_monitor ~readers:1 ~writers:2)

let test_buffer_workloads () =
  mon_parity "buffer-monitor-1p1c2i"
    (Buffer.monitor_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2);
  mon_parity "buffer-buggy-monitor-1p1c2i"
    (Buffer.buggy_monitor_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2);
  csp_parity "buffer-csp-1p1c2i"
    (Buffer.csp_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2);
  ada_parity "buffer-ada-1p1c2i"
    (Buffer.ada_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2)

let test_distributed_workloads () =
  csp_parity "rwd-csp-1r1w" (Rwd.csp_program ~readers:1 ~writers:1);
  csp_parity "rwd-csp-no-priority-1r1w"
    (Rwd.csp_program_no_priority ~readers:1 ~writers:1);
  csp_parity "db-update-2-sites" (Db.program ~sites:2)

(* The Db_update report aggregates exploration and parallel per-computation
   checking; the whole record must be jobs-independent. *)
let test_db_report_parity () =
  let base = Db.check ~jobs:1 ~sites:2 () in
  List.iter
    (fun jobs ->
      let r = Db.check ~jobs ~sites:2 () in
      let tag = Printf.sprintf "db jobs=%d" jobs in
      check Alcotest.int (tag ^ ": computations") base.Db.computations r.Db.computations;
      check Alcotest.int (tag ^ ": deadlocks") base.Db.deadlocks r.Db.deadlocks;
      check Alcotest.bool (tag ^ ": converges") base.Db.converges r.Db.converges;
      check
        Alcotest.(option string)
        (tag ^ ": exhaustion") (reason_opt base.Db.exhausted) (reason_opt r.Db.exhausted))
    job_counts

(* ------------------------------------------------------------------ *)
(* Byte-identical rendered verdicts                                    *)
(* ------------------------------------------------------------------ *)

(* Render verdicts in the order the interpreter returned the computations:
   unlike test_por's harness this does NOT re-sort, so it checks the
   canonical-ordering guarantee of the outcome itself, and it also runs
   the checking stage parallel (Refine.sat ~jobs) to cover Par.map's
   order preservation. *)
let render ~jobs ~problem ~map ?edges comps =
  let verdicts = Refine.sat ~strategy ~jobs ?edges ~problem ~map comps in
  String.concat "\n"
    (List.map
       (fun (i, v) ->
         Printf.sprintf "%d %s %s" i
           (Verdict.status_keyword (Verdict.status v))
           (Format.asprintf "%a" (Verdict.pp None) v))
       verdicts)

let test_verdicts_byte_identical () =
  let rw_case name monitor version ~readers ~writers =
    let prog = RW.program ~monitor ~readers ~writers in
    let problem = RW.spec version ~users:(RW.user_names ~readers ~writers) in
    let rendered jobs =
      let o = Monitor.explore ~jobs prog in
      render ~jobs ~edges:Refine.Actor_paths ~problem ~map:RW.correspondence
        o.Monitor.computations
    in
    let base = rendered 1 in
    List.iter
      (fun jobs ->
        check Alcotest.string
          (Printf.sprintf "%s: verdicts byte-identical at jobs=%d" name jobs)
          base (rendered jobs))
      job_counts
  in
  rw_case "rw-paper-verified" RW.paper_monitor RW.Readers_priority ~readers:1
    ~writers:1;
  rw_case "rw-no-exclusion-falsified" RW.no_exclusion_monitor RW.Free_for_all
    ~readers:2 ~writers:1;
  let buffer_rendered jobs =
    let o =
      Csp.explore ~jobs
        (Buffer.csp_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2)
    in
    render ~jobs ~problem:(Buffer.spec ~capacity:1) ~map:Buffer.csp_correspondence
      o.Csp.computations
  in
  let base = buffer_rendered 1 in
  List.iter
    (fun jobs ->
      check Alcotest.string
        (Printf.sprintf "buffer-csp: verdicts byte-identical at jobs=%d" jobs)
        base (buffer_rendered jobs))
    job_counts

(* Regression for the latent nondeterminism the canonical merge fixed:
   two runs of the SAME configuration (sequential included) must render
   the same bytes — completed/deadlocked leaves are sorted by canonical
   key and deduplication is fingerprint-sorted, so nothing about
   traversal order can leak into reports. *)
let test_sequential_runs_identical () =
  let prog = RW.program ~monitor:RW.paper_monitor ~readers:2 ~writers:1 in
  let problem = RW.spec RW.Readers_priority ~users:(RW.user_names ~readers:2 ~writers:1) in
  let rendered () =
    let o = Monitor.explore ~jobs:1 prog in
    render ~jobs:1 ~edges:Refine.Actor_paths ~problem ~map:RW.correspondence
      o.Monitor.computations
  in
  check Alcotest.string "two sequential runs render identically" (rendered ())
    (rendered ());
  let par () =
    let o = Monitor.explore ~jobs:8 prog in
    render ~jobs:1 ~edges:Refine.Actor_paths ~problem ~map:RW.correspondence
      o.Monitor.computations
  in
  check Alcotest.string "two jobs=8 runs render identically" (par ()) (par ())

(* ------------------------------------------------------------------ *)
(* Par.map: ordering, failure propagation, job-count defaulting        *)
(* ------------------------------------------------------------------ *)

let test_par_map_preserves_order () =
  List.iter
    (fun jobs ->
      let xs = List.init 97 Fun.id in
      check
        Alcotest.(list int)
        (Printf.sprintf "map id at jobs=%d" jobs)
        (List.map (fun x -> x * x) xs)
        (Par.map ~jobs (fun x -> x * x) xs);
      check Alcotest.(list int) "empty input" [] (Par.map ~jobs (fun x -> x) []))
    [ 1; 2; 8 ]

exception Boom

let test_par_map_reraises () =
  List.iter
    (fun jobs ->
      check Alcotest.bool
        (Printf.sprintf "exception propagates at jobs=%d" jobs)
        true
        (try
           ignore (Par.map ~jobs (fun x -> if x = 41 then raise Boom else x) (List.init 64 Fun.id));
           false
         with Boom -> true))
    [ 1; 2; 8 ]

let test_jobs_default_env () =
  (* jobs_default reads GEM_JOBS leniently: unset/garbage/non-positive all
     fall back to 1 — library callers never fail on a bad environment;
     strict validation is the CLI's job. *)
  let saved = Option.value ~default:"" (Sys.getenv_opt "GEM_JOBS") in
  let with_env v f =
    (match v with None -> Unix.putenv "GEM_JOBS" "" | Some s -> Unix.putenv "GEM_JOBS" s);
    Fun.protect ~finally:(fun () -> Unix.putenv "GEM_JOBS" saved) f
  in
  with_env (Some "3") (fun () ->
      check Alcotest.int "GEM_JOBS=3" 3 (Par.jobs_default ()));
  with_env (Some "not-a-number") (fun () ->
      check Alcotest.int "garbage falls back to 1" 1 (Par.jobs_default ()));
  with_env (Some "0") (fun () ->
      check Alcotest.int "zero falls back to 1" 1 (Par.jobs_default ()));
  with_env None (fun () -> check Alcotest.int "unset means 1" 1 (Par.jobs_default ()))

(* ------------------------------------------------------------------ *)
(* Random loop-free CSP programs (qcheck)                              *)
(* ------------------------------------------------------------------ *)

let prop_csp_random_parallel_parity =
  QCheck.Test.make ~name:"random CSP: jobs in {2,8} agree with sequential"
    ~count:40 Gen_csp.prog_arb (fun prog ->
      List.for_all
        (fun por ->
          let base = Csp.explore ~por ~jobs:1 prog in
          List.for_all
            (fun jobs ->
              let o = Csp.explore ~por ~jobs prog in
              fps o.Csp.computations = fps base.Csp.computations
              && fps o.Csp.deadlocks = fps base.Csp.deadlocks
              && o.Csp.exhausted = None
              && base.Csp.exhausted = None)
            job_counts)
        [ true; false ])

let () =
  let to_alc = QCheck_alcotest.to_alcotest in
  Alcotest.run "gem_parallel"
    [
      ( "workload-parity",
        [
          Alcotest.test_case "rw-monitor workloads" `Quick test_rw_monitor_workloads;
          Alcotest.test_case "buffer workloads" `Quick test_buffer_workloads;
          Alcotest.test_case "distributed workloads" `Quick test_distributed_workloads;
          Alcotest.test_case "db-update report" `Quick test_db_report_parity;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "verdicts byte-identical" `Quick test_verdicts_byte_identical;
          Alcotest.test_case "repeated runs identical" `Quick test_sequential_runs_identical;
        ] );
      ( "par-map",
        [
          Alcotest.test_case "order preserved" `Quick test_par_map_preserves_order;
          Alcotest.test_case "failure re-raised" `Quick test_par_map_reraises;
          Alcotest.test_case "GEM_JOBS defaulting" `Quick test_jobs_default_env;
        ] );
      ("random-programs", [ to_alc prop_csp_random_parallel_parity ]);
    ]
