(* Reproduce every claim-check experiment (EXPERIMENTS.md) and print the
   PASS/FAIL tables. Exit status 1 if anything fails.

   Run with: dune exec bin/experiments.exe *)

let () =
  print_endline "GEM reproduction experiments (Lansky & Owicki 1983)";
  print_endline "====================================================";
  let ok = Gem_experiments.Experiments.run_all () in
  Printf.printf "\n%s\n" (if ok then "ALL EXPERIMENTS PASS" else "SOME EXPERIMENTS FAILED");
  exit (if ok then 0 else 1)
