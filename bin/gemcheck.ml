(* gemcheck — command-line front end to the GEM toolkit.

   Subcommands:
     experiments  run the reproduction experiments (optionally a subset)
     rw           verify a Readers/Writers monitor against a problem version
     buffer       verify a bounded-buffer solution in a chosen language
     db           explore the distributed database update
     life         check the asynchronous Game of Life

   Run with: dune exec bin/gemcheck.exe -- <subcommand> ... *)

open Cmdliner
open Gem

let strategy = Strategy.Linearizations (Some 400)

(* ------------------------------------------------------------------ *)
(* experiments                                                         *)
(* ------------------------------------------------------------------ *)

let experiments_cmd =
  let only =
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID" ~doc:"Run only experiment $(docv) (e.g. E9).")
  in
  let run only =
    let selected =
      match only with
      | None -> Gem_experiments.Experiments.all
      | Some id ->
          List.filter (fun (i, _, _) -> String.equal i id) Gem_experiments.Experiments.all
    in
    if selected = [] then (
      Printf.eprintf "no such experiment\n";
      1)
    else begin
      let ok = ref true in
      List.iter
        (fun (id, title, kernel) ->
          Printf.printf "\n%s — %s\n" id title;
          List.iter
            (fun r ->
              let open Gem_experiments.Experiments in
              if not r.pass then ok := false;
              Printf.printf "  [%s] %-62s %s\n%!"
                (if r.pass then "PASS" else "FAIL")
                r.label r.detail)
            (kernel ()))
        selected;
      if !ok then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the paper-reproduction experiments.")
    Term.(const run $ only)

(* ------------------------------------------------------------------ *)
(* rw                                                                  *)
(* ------------------------------------------------------------------ *)

let monitor_conv =
  Arg.enum
    [
      ("paper", Readers_writers.paper_monitor);
      ("writers-priority", Readers_writers.writers_priority_monitor);
      ("buggy", Readers_writers.buggy_monitor);
      ("no-exclusion", Readers_writers.no_exclusion_monitor);
    ]

let version_conv =
  Arg.enum
    (List.map (fun v -> (Readers_writers.version_name v, v)) Readers_writers.all_versions)

let rw_cmd =
  let monitor =
    Arg.(value & opt monitor_conv Readers_writers.paper_monitor
         & info [ "monitor" ] ~docv:"M" ~doc:"Monitor program: paper, writers-priority, buggy, no-exclusion.")
  in
  let version =
    Arg.(value & opt version_conv Readers_writers.Readers_priority
         & info [ "version" ] ~docv:"V" ~doc:"Problem version to check.")
  in
  let readers = Arg.(value & opt int 2 & info [ "readers" ] ~docv:"N") in
  let writers = Arg.(value & opt int 1 & info [ "writers" ] ~docv:"N") in
  let run monitor version readers writers =
    let program = Readers_writers.program ~monitor ~readers ~writers in
    let o = Monitor.explore program in
    Printf.printf "explored: %d distinct computations, %d deadlocks\n"
      (List.length o.Monitor.computations)
      (List.length o.Monitor.deadlocks);
    let problem =
      Readers_writers.spec version ~users:(Readers_writers.user_names ~readers ~writers)
    in
    let results =
      Refine.sat ~strategy ~edges:Refine.Actor_paths ~problem
        ~map:Readers_writers.correspondence o.Monitor.computations
    in
    let failures = List.filter (fun (_, v) -> not (Verdict.ok v)) results in
    (match failures with
    | [] -> Printf.printf "SAT: every computation satisfies %s\n" (Readers_writers.version_name version)
    | (i, v) :: _ ->
        Printf.printf "VIOLATED on computation %d (of %d failing):\n" i (List.length failures);
        Format.printf "%a@." (Verdict.pp None) v);
    if failures = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "rw" ~doc:"Verify a Readers/Writers monitor against a problem version.")
    Term.(const run $ monitor $ version $ readers $ writers)

(* ------------------------------------------------------------------ *)
(* buffer                                                              *)
(* ------------------------------------------------------------------ *)

let buffer_cmd =
  let lang =
    Arg.(value & opt (enum [ ("monitor", `Monitor); ("csp", `Csp); ("ada", `Ada) ]) `Monitor
         & info [ "lang" ] ~docv:"L" ~doc:"Implementation language.")
  in
  let capacity = Arg.(value & opt int 1 & info [ "capacity" ] ~docv:"N") in
  let producers = Arg.(value & opt int 1 & info [ "producers" ] ~docv:"N") in
  let consumers = Arg.(value & opt int 1 & info [ "consumers" ] ~docv:"N") in
  let items = Arg.(value & opt int 2 & info [ "items" ] ~docv:"N" ~doc:"Items per producer.") in
  let run lang capacity producers consumers items =
    let problem = Buffer_problem.spec ~capacity in
    let comps, deadlocks, ok =
      match lang with
      | `Monitor ->
          let o = Monitor.explore (Buffer_problem.monitor_solution ~capacity ~producers ~consumers ~items_each:items) in
          ( List.length o.Monitor.computations,
            List.length o.Monitor.deadlocks,
            Refine.sat_ok ~strategy ~problem ~map:Buffer_problem.monitor_correspondence
              o.Monitor.computations )
      | `Csp ->
          let o = Csp.explore (Buffer_problem.csp_solution ~capacity ~producers ~consumers ~items_each:items) in
          ( List.length o.Csp.computations,
            List.length o.Csp.deadlocks,
            Refine.sat_ok ~strategy ~problem ~map:Buffer_problem.csp_correspondence
              o.Csp.computations )
      | `Ada ->
          let o = Ada.explore (Buffer_problem.ada_solution ~capacity ~producers ~consumers ~items_each:items) in
          ( List.length o.Ada.computations,
            List.length o.Ada.deadlocks,
            Refine.sat_ok ~strategy ~problem ~map:Buffer_problem.ada_correspondence
              o.Ada.computations )
    in
    Printf.printf "%d computations, %d deadlocks — %s\n" comps deadlocks
      (if ok && deadlocks = 0 then "SAT" else "VIOLATED");
    if ok && deadlocks = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "buffer" ~doc:"Verify a bounded-buffer solution.")
    Term.(const run $ lang $ capacity $ producers $ consumers $ items)

(* ------------------------------------------------------------------ *)
(* rwd: distributed Readers/Writers                                    *)
(* ------------------------------------------------------------------ *)

let rwd_cmd =
  let lang =
    Arg.(value & opt (enum [ ("csp", `Csp); ("ada", `Ada) ]) `Csp
         & info [ "lang" ] ~docv:"L" ~doc:"Implementation language.")
  in
  let readers = Arg.(value & opt int 1 & info [ "readers" ] ~docv:"N") in
  let writers = Arg.(value & opt int 1 & info [ "writers" ] ~docv:"N") in
  let broken =
    Arg.(value & flag & info [ "no-priority" ] ~doc:"Use the priority-less mutant.")
  in
  let run lang readers writers broken =
    let rnames, wnames = Rw_distributed.user_names ~readers ~writers in
    let problem = Rw_distributed.spec ~readers:rnames ~writers:wnames in
    let comps, deadlocks, ok =
      match lang with
      | `Csp ->
          let program =
            if broken then Rw_distributed.csp_program_no_priority ~readers ~writers
            else Rw_distributed.csp_program ~readers ~writers
          in
          let o = Csp.explore ~max_configs:20_000_000 program in
          ( List.length o.Csp.computations,
            List.length o.Csp.deadlocks,
            Refine.sat_ok ~strategy ~problem ~map:Rw_distributed.csp_correspondence
              o.Csp.computations )
      | `Ada ->
          let program =
            if broken then Rw_distributed.ada_program_no_priority ~readers ~writers
            else Rw_distributed.ada_program ~readers ~writers
          in
          let o = Ada.explore ~max_configs:20_000_000 program in
          ( List.length o.Ada.computations,
            List.length o.Ada.deadlocks,
            Refine.sat_ok ~strategy ~problem ~map:Rw_distributed.ada_correspondence
              o.Ada.computations )
    in
    Printf.printf "%d computations, %d deadlocks — %s\n" comps deadlocks
      (if ok && deadlocks = 0 then "SAT" else "VIOLATED");
    if ok && deadlocks = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "rwd"
       ~doc:"Verify the distributed (CSP/ADA) Readers/Writers solutions.")
    Term.(const run $ lang $ readers $ writers $ broken)

(* ------------------------------------------------------------------ *)
(* parse                                                               *)
(* ------------------------------------------------------------------ *)

let parse_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"A specification in GEM's concrete syntax (.gem).")
  in
  let run file =
    let ic = open_in file in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Parser.parse_spec src with
    | Ok spec ->
        Format.printf "%a@." Spec.pp spec;
        Printf.printf "\n%d element(s), %d group(s), %d restriction(s), %d thread(s)\n"
          (List.length spec.Spec.elements)
          (List.length spec.Spec.groups)
          (Spec.restriction_count spec)
          (List.length spec.Spec.threads);
        0
    | Error m ->
        Printf.eprintf "parse error: %s\n" m;
        1
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse and echo a GEM specification file.")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* db / life                                                           *)
(* ------------------------------------------------------------------ *)

let db_cmd =
  let sites = Arg.(value & opt int 3 & info [ "sites" ] ~docv:"N") in
  let run sites =
    let comps, deadlocks, ok = Db_update.check ~sites () in
    Printf.printf "%d computations, %d deadlocks, convergence: %b\n" comps deadlocks ok;
    if ok && deadlocks = 0 then 0 else 1
  in
  Cmd.v (Cmd.info "db" ~doc:"Explore the distributed database update.") Term.(const run $ sites)

let life_cmd =
  let width = Arg.(value & opt int 4 & info [ "width" ] ~docv:"N") in
  let height = Arg.(value & opt int 4 & info [ "height" ] ~docv:"N") in
  let generations = Arg.(value & opt int 2 & info [ "generations" ] ~docv:"N") in
  let run width height generations =
    let alive = [ (1, 0); (1, 1); (1, 2) ] in
    let comp = Life.build ~width ~height ~generations ~alive in
    let spec = Life.spec ~width ~height in
    let correct =
      Check.holds spec comp (Life.matches_reference ~width ~height ~generations ~alive)
    in
    Printf.printf "%d events, correct: %b, asynchrony witness: %b\n"
      (Computation.n_events comp) correct
      (Life.asynchrony_witness comp <> None);
    if correct then 0 else 1
  in
  Cmd.v
    (Cmd.info "life" ~doc:"Check the asynchronous Game of Life.")
    Term.(const run $ width $ height $ generations)

let () =
  let doc = "GEM concurrency specification and verification toolkit" in
  let info = Cmd.info "gemcheck" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ experiments_cmd; rw_cmd; rwd_cmd; buffer_cmd; db_cmd; life_cmd; parse_cmd ]))
