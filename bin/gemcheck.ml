(* gemcheck — command-line front end to the GEM toolkit.

   Subcommands:
     experiments  run the reproduction experiments (optionally a subset)
     rw           verify a Readers/Writers monitor against a problem version
     buffer       verify a bounded-buffer solution in a chosen language
     db           explore the distributed database update
     life         check the asynchronous Game of Life
     fuzz         differential fuzzing across the engine lattice
     matrix       sweep the parameterized workload matrix (BENCH JSON)
     parse        parse and echo a GEM specification file
     serve        long-running checking daemon with a verdict cache
     client       send one request to a running serve daemon

   Every verification subcommand accepts a resource budget (--timeout,
   --max-configs, --max-runs) and degrades gracefully: exhaustion yields a
   three-valued INCONCLUSIVE outcome with a reason and coverage stats
   instead of a crash or a silently truncated "verified".

   The verification pipelines themselves live in Gem_daemon.Runner so
   that a one-shot run and a daemon response are the same code path —
   the serve cache's byte-identity guarantee depends on it. This file is
   flag parsing, signal wiring and human-facing printing.

   Exit codes: 0 verified, 1 falsified, 2 inconclusive, 3 usage or
   internal error.

   Run with: dune exec bin/gemcheck.exe -- <subcommand> ... *)

open Cmdliner
open Gem

(* ------------------------------------------------------------------ *)
(* Budget flags, shared by every verification subcommand               *)
(* ------------------------------------------------------------------ *)

let budget_term =
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECS"
             ~doc:"Wall-clock budget in seconds. Exhaustion degrades to an \
                   inconclusive verdict (exit 2) instead of running forever.")
  in
  let max_configs =
    Arg.(value & opt (some int) None
         & info [ "max-configs" ] ~docv:"N"
             ~doc:"Total interpreter configurations to visit across the run.")
  in
  let max_runs =
    Arg.(value & opt (some int) None
         & info [ "max-runs" ] ~docv:"N"
             ~doc:(Printf.sprintf
                     "Run-enumeration cap per temporal check (default %d)."
                     Strategy.default_run_cap))
  in
  let make timeout max_configs max_runs =
    Budget.make ?timeout ?max_configs ?max_runs ()
  in
  Term.(const make $ timeout $ max_configs $ max_runs)

let json_flag =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Emit the outcome report as a JSON object.")

(* --jobs must be a positive integer: 0 domains cannot make progress and
   negative counts are meaningless, so both are usage errors (exit 3),
   not silently clamped. The GEM_JOBS environment variable goes through
   the same parser, keeping flag and env behavior identical. *)
let jobs_term =
  let jobs_conv =
    let parse s =
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Ok n
      | Some n -> Error (`Msg (Printf.sprintf "%d is not a valid job count (must be at least 1)" n))
      | None -> Error (`Msg (Printf.sprintf "%S is not a valid job count (expected a positive integer)" s))
    in
    Arg.conv ~docv:"N" (parse, Format.pp_print_int)
  in
  Arg.(value & opt jobs_conv 1
       & info [ "jobs" ] ~docv:"N"
           ~env:(Cmd.Env.info "GEM_JOBS"
                   ~doc:"Default job count when $(b,--jobs) is absent.")
           ~doc:"Explore schedules and check computations on $(docv) \
                 domains. Results and exit codes are identical for every \
                 value; only wall-clock time (and, under partial-order \
                 reduction, the configuration counters) may differ.")

(* --batch gets the same strict treatment as --jobs: chunk size 0 would
   park the parallel engine, negatives are meaningless — exit 3. The
   lenient GEM_BATCH fallback for library users lives in
   Gem_check.Par.batch_default; the CLI env alias goes through this
   strict parser instead. *)
let batch_term =
  let batch_conv =
    let parse s =
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Ok n
      | Some n -> Error (`Msg (Printf.sprintf "%d is not a valid batch size (must be at least 1)" n))
      | None -> Error (`Msg (Printf.sprintf "%S is not a valid batch size (expected a positive integer)" s))
    in
    Arg.conv ~docv:"N" (parse, Format.pp_print_int)
  in
  Arg.(value & opt batch_conv 64
       & info [ "batch" ] ~docv:"N"
           ~env:(Cmd.Env.info "GEM_BATCH"
                   ~doc:"Default batch size when $(b,--batch) is absent.")
           ~doc:"Move work between parallel domains in chunks of up to \
                 $(docv) frontier configurations, batching seen-table \
                 probes per shard (default 64). Verdicts are \
                 byte-identical for every (jobs, batch) pair; the knob \
                 only moves coordination cost. Ignored when \
                 $(b,--jobs) is 1.")

(* ------------------------------------------------------------------ *)
(* Resilience flags, shared by the exploration subcommands             *)
(* ------------------------------------------------------------------ *)

type resil_opts = {
  ro_bitstate : bool;
  ro_bits : int;
  ro_spill_mb : int option;
  ro_ckpt : string option;
  ro_ckpt_every : int;
  ro_resume : string option;
}

let resilience_term =
  let positive name =
    let parse s =
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Ok n
      | Some _ | None ->
          Error (`Msg (Printf.sprintf "%S is not a valid %s (expected a positive integer)" s name))
    in
    Arg.conv ~docv:"N" (parse, Format.pp_print_int)
  in
  let bitstate =
    Arg.(value & flag
         & info [ "bitstate" ]
             ~doc:"Replace the exact seen set with a SPIN-style bounded-RAM \
                   fingerprint table (see $(b,--bitstate-bits)). Collisions \
                   can silently prune unseen states, so a clean sweep is \
                   reported as INCONCLUSIVE with reason \
                   bitstate-collision-risk; a found violation or deadlock \
                   stays sound. Composes with $(b,--audit-keys) to measure \
                   the realized collision rate.")
  in
  let bits =
    Arg.(value & opt (positive "bit width") 24
         & info [ "bitstate-bits" ] ~docv:"N"
             ~doc:"log2 of the bitstate table's slot count (default 24 = \
                   16M slots = 256 MiB). Each visited state costs one \
                   16-byte slot; the table never grows.")
  in
  let spill_mb =
    Arg.(value & opt (some (positive "watermark")) None
         & info [ "spill-mb" ] ~docv:"MB"
             ~doc:"Page the exploration frontier to a temp file whenever \
                   the major heap exceeds $(docv) MiB. An I/O failure \
                   degrades to INCONCLUSIVE (spill-io-error), never a \
                   crash. Forces the sequential resilient engine.")
  in
  let ckpt =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Periodically snapshot the complete exploration state to \
                   $(docv) (atomic rename; see $(b,--checkpoint-every)), so \
                   a killed run can continue with $(b,--resume). Forces the \
                   sequential resilient engine.")
  in
  let ckpt_every =
    Arg.(value & opt (positive "interval") 50_000
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Visited configurations between checkpoint snapshots \
                   (default 50000).")
  in
  let resume =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"FILE"
             ~doc:"Resume from a $(b,--checkpoint) snapshot instead of the \
                   initial configuration; the finished run's verdict is \
                   byte-identical to an uninterrupted one. The snapshot's \
                   stamp (command, workload and engine parameters) must \
                   match, else exit 3.")
  in
  Term.(const (fun ro_bitstate ro_bits ro_spill_mb ro_ckpt ro_ckpt_every ro_resume ->
          { ro_bitstate; ro_bits; ro_spill_mb; ro_ckpt; ro_ckpt_every; ro_resume })
        $ bitstate $ bits $ spill_mb $ ckpt $ ckpt_every $ resume)

(* The checkpoint stamp pins the run identity: resolved engine switches
   (the environment defaults matter — a resumed run must resolve to the
   same engine) plus each command's workload parameters. *)
let resilience_of ~command ~params ~reduction ~exact_keys ro =
  (* The stamp keeps its historical por=%b field (old checkpoints must
     keep resuming); it stays accurate because checkpoint/resume runs
     degrade source to sleep sets — both are por=true engines. *)
  let por = Explore.resolve_reduction ?reduction () <> Explore.No_reduction in
  let exact =
    match exact_keys with Some b -> b | None -> Explore.exact_keys_default ()
  in
  let stamp =
    Printf.sprintf "gemcheck/1 %s %s por=%b exact=%b bitstate=%s" command params
      por exact
      (if ro.ro_bitstate then string_of_int ro.ro_bits else "off")
  in
  {
    Explore.bitstate =
      (if ro.ro_bitstate then Some (Bitstate.create ~bits:ro.ro_bits ())
       else None);
    spool =
      Option.map (fun mb -> Spool.policy ~watermark_mb:mb ()) ro.ro_spill_mb;
    checkpoint =
      Option.map (fun f -> Checkpoint.ctl ~every:ro.ro_ckpt_every f) ro.ro_ckpt;
    resume = ro.ro_resume;
    stamp;
    degrade_crashes =
      ro.ro_bitstate || ro.ro_spill_mb <> None || ro.ro_ckpt <> None
      || ro.ro_resume <> None;
  }

(* SIGINT/SIGTERM stop the run through the budget's first-reason-wins
   cell: every engine polls it, unwinds keeping the leaves found so far,
   and the normal (JSON) report renders a partial-coverage INCONCLUSIVE
   with reason "interrupted" — exit 2, temp files swept — instead of the
   process dying mid-write. *)
let install_signals budget =
  let handle _ = Budget.note budget Budget.Interrupted in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle handle)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

(* ------------------------------------------------------------------ *)
(* Telemetry flags, shared by every verification subcommand            *)
(* ------------------------------------------------------------------ *)

(* --stats prints one JSON line of telemetry after the report;
   --stats-deterministic restricts it to the schedule-independent
   counters so the whole stdout is byte-identical for every --jobs
   value; --trace FILE writes a Chrome-trace-event timeline. GEM_STATS
   follows the GEM_JOBS pattern: the env alias goes through the same
   (cmdliner boolean) validation as the flag, so a malformed value is a
   usage error (exit 3), never silently ignored. *)

type obs = { stats : bool; stats_det : bool; trace : string option }

let obs_term =
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~env:(Cmd.Env.info "GEM_STATS"
                     ~doc:"Enable $(b,--stats) when set to true.")
             ~doc:"Collect telemetry (counters and phase timings) and \
                   print it as one JSON line after the report.")
  in
  let stats_det =
    Arg.(value & flag
         & info [ "stats-deterministic" ]
             ~doc:"Like $(b,--stats), but restricted to the \
                   schedule-independent counters, so the output is \
                   byte-identical for every $(b,--jobs) value.")
  in
  let trace =
    let file_conv =
      let parse s =
        if String.trim s = "" then
          Error (`Msg "trace output must be a non-empty file path")
        else Ok s
      in
      Arg.conv ~docv:"FILE" (parse, Format.pp_print_string)
    in
    Arg.(value & opt (some file_conv) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome-trace-event timeline (one JSON event \
                   per line; per-domain tids) to $(docv). Load it in \
                   Perfetto or chrome://tracing.")
  in
  Term.(const (fun stats stats_det trace ->
          { stats = stats || stats_det; stats_det; trace })
        $ stats $ stats_det $ trace)

let obs_init o =
  if o.stats then Telemetry.enable ();
  Option.iter Telemetry.trace_to o.trace

(* Runs after the report so the stats line is the last line of output;
   a trace that cannot be written is an internal error (exit 3). *)
let obs_finish ~json o code =
  let code =
    match (try Telemetry.flush_trace (); None with Sys_error m -> Some m) with
    | None -> code
    | Some m ->
        Printf.eprintf "cannot write trace: %s\n" m;
        3
  in
  if o.stats then begin
    if json then print_newline ();
    print_endline (Telemetry.stats_json ~deterministic:o.stats_det ())
  end;
  code

(* --reduction picks the reduction engine; --no-por is kept as an alias
   for --reduction none. The default honors GEM_REDUCTION, then the
   legacy GEM_NO_POR (see Explore.reduction_default). Passing [None]
   down keeps the interpreters' own defaulting in charge. *)
let reduction_conv =
  let parse s =
    match Explore.reduction_of_string s with
    | Some r -> Ok r
    | None ->
        Error
          (`Msg
             (Printf.sprintf "invalid reduction %S (expected none, sleep or source)" s))
  in
  Arg.conv ~docv:"ENGINE"
    (parse, fun ppf r -> Format.pp_print_string ppf (Explore.reduction_name r))

let por_term =
  let no_por =
    Arg.(value & flag
         & info [ "no-por" ]
             ~doc:"Alias for $(b,--reduction) $(i,none): explore every \
                   interleaving with a plain depth-first search. The \
                   verdict is unchanged; only the configuration counts \
                   (and runtime) differ.")
  in
  let reduction =
    Arg.(value & opt (some reduction_conv) None
         & info [ "reduction" ] ~docv:"ENGINE"
             ~doc:"Reduction engine: $(i,none) (plain exhaustive DFS), \
                   $(i,sleep) (persistent/sleep sets, the default) or \
                   $(i,source) (source-DPOR with race-driven wakeups; \
                   explores no more configurations than sleep and \
                   asymptotically fewer on rendezvous-heavy workloads, \
                   but runs sequentially even under $(b,--jobs)). The \
                   $(b,GEM_REDUCTION) variable supplies the default \
                   when the flag is absent. The verdict is \
                   byte-identical across engines.")
  in
  Term.(ret
          (const (fun no_por reduction ->
               match (no_por, reduction) with
               | false, Some r -> `Ok (Some r)
               | true, (None | Some Explore.No_reduction) ->
                   `Ok (Some Explore.No_reduction)
               | true, Some _ ->
                   `Error
                     ( false,
                       "--no-por is an alias for --reduction none and \
                        conflicts with --reduction sleep|source" )
               | false, None -> (
                   (* GEM_REDUCTION is read by hand rather than wired
                      through cmdliner's ~env: an env value must not be
                      mistaken for an explicit --reduction, or it would
                      conflict with an explicit --no-por — flags beat
                      the environment. Bad spellings are still usage
                      errors, exactly like the flag's. *)
                   match Sys.getenv_opt "GEM_REDUCTION" with
                   | None -> `Ok None
                   | Some s -> (
                       match Explore.reduction_of_string s with
                       | Some r -> `Ok (Some r)
                       | None ->
                           `Error
                             ( false,
                               Printf.sprintf
                                 "environment variable GEM_REDUCTION: \
                                  invalid reduction %S (expected none, \
                                  sleep or source)"
                                 s ))))
           $ no_por $ reduction))

(* --exact-keys / --audit-keys pick the search-key mode of the reduced
   search; like --no-por, passing [None] down defers to the interpreters'
   environment-aware defaults (GEM_EXACT_KEYS / GEM_AUDIT_KEYS, see
   Explore.exact_keys_default / audit_keys_default). *)
let keys_term =
  let exact =
    Arg.(value & flag
         & info [ "exact-keys" ]
             ~doc:"Key the reduced search on exact canonical state keys \
                   instead of incremental 128-bit fingerprints: slower, \
                   but immune to fingerprint collisions. The default \
                   honors the GEM_EXACT_KEYS environment variable.")
  in
  let audit =
    Arg.(value & flag
         & info [ "audit-keys" ]
             ~doc:"Keep fingerprint keys but compute the exact key \
                   alongside as a collision oracle (forfeiting the \
                   speedup); mismatches are counted under the \
                   fingerprint_collisions telemetry counter — see \
                   $(b,--stats). The default honors the GEM_AUDIT_KEYS \
                   environment variable.")
  in
  Term.(const (fun e a ->
          ((if e then Some true else None), (if a then Some true else None)))
        $ exact $ audit)

(* ------------------------------------------------------------------ *)
(* Shared verification plumbing                                        *)
(* ------------------------------------------------------------------ *)

(* The extra restriction rides the same parser as serve's restrict= key,
   so a formula accepted here is accepted on the wire and vice versa. *)
let restrict_term =
  let formula_conv =
    let parse s =
      match Parser.parse_formula s with
      | Ok f -> Ok f
      | Error m -> Error (`Msg (Printf.sprintf "bad restriction formula: %s" m))
    in
    Arg.conv ~docv:"FORMULA" (parse, Formula.pp)
  in
  Arg.(value & opt (some formula_conv) None
       & info [ "restrict" ] ~docv:"FORMULA"
           ~doc:"Check an extra restriction (GEM formula syntax) alongside \
                 the problem specification's own.")

let runner_opts ~reduction ~exact_keys ~audit_keys ~jobs ~batch ~resilience =
  { Runner.reduction; por = None; exact_keys; audit_keys; jobs; batch; resilience }

(* ------------------------------------------------------------------ *)
(* experiments                                                         *)
(* ------------------------------------------------------------------ *)

let experiments_cmd =
  let only =
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID" ~doc:"Run only experiment $(docv) (e.g. E9).")
  in
  let run only =
    let selected =
      match only with
      | None -> Gem_experiments.Experiments.all
      | Some id ->
          List.filter (fun (i, _, _) -> String.equal i id) Gem_experiments.Experiments.all
    in
    if selected = [] then (
      Printf.eprintf "no such experiment\n";
      3)
    else begin
      let ok = ref true in
      List.iter
        (fun (id, title, kernel) ->
          Printf.printf "\n%s — %s\n" id title;
          List.iter
            (fun r ->
              let open Gem_experiments.Experiments in
              if not r.pass then ok := false;
              Printf.printf "  [%s] %-62s %s\n%!"
                (if r.pass then "PASS" else "FAIL")
                r.label r.detail)
            (kernel ()))
        selected;
      if !ok then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the paper-reproduction experiments.")
    Term.(const run $ only)

(* ------------------------------------------------------------------ *)
(* rw                                                                  *)
(* ------------------------------------------------------------------ *)

(* The runner maps names to monitor programs; the CLI only needs the
   vocabulary for flag validation. *)
let monitor_conv =
  Arg.enum
    (List.map
       (fun n -> (n, n))
       [ "paper"; "writers-priority"; "buggy"; "no-exclusion" ])

let version_conv =
  Arg.enum
    (List.map (fun v -> (Readers_writers.version_name v, v)) Readers_writers.all_versions)

let rw_cmd =
  let monitor =
    Arg.(value & opt monitor_conv "paper"
         & info [ "monitor" ] ~docv:"M" ~doc:"Monitor program: paper, writers-priority, buggy, no-exclusion.")
  in
  let version =
    Arg.(value & opt version_conv Readers_writers.Readers_priority
         & info [ "version" ] ~docv:"V" ~doc:"Problem version to check.")
  in
  let readers = Arg.(value & opt int 2 & info [ "readers" ] ~docv:"N") in
  let writers = Arg.(value & opt int 1 & info [ "writers" ] ~docv:"N") in
  let run monitor version readers writers restrict reduction (exact_keys, audit_keys) jobs batch budget resil json obs =
    obs_init obs;
    install_signals budget;
    let load = Runner.Rw { monitor; version; readers; writers } in
    let resilience =
      resilience_of ~command:"rw" ~params:(Runner.params_string load)
        ~reduction ~exact_keys resil
    in
    let r =
      Runner.run load
        (runner_opts ~reduction ~exact_keys ~audit_keys ~jobs ~batch ~resilience)
        ~budget ~restrict
    in
    (if not json then
       match r.Runner.failures with
       | (_, v) :: _ -> Format.printf "%a@." (Verdict.pp None) v
       | [] -> ());
    obs_finish ~json obs (Runner.print_report ~json ~command:"rw" r)
  in
  Cmd.v
    (Cmd.info "rw" ~doc:"Verify a Readers/Writers monitor against a problem version.")
    Term.(const run $ monitor $ version $ readers $ writers $ restrict_term $ por_term $ keys_term $ jobs_term $ batch_term $ budget_term $ resilience_term $ json_flag $ obs_term)

(* ------------------------------------------------------------------ *)
(* buffer                                                              *)
(* ------------------------------------------------------------------ *)

let buffer_cmd =
  let lang =
    Arg.(value & opt (enum [ ("monitor", `Monitor); ("csp", `Csp); ("ada", `Ada) ]) `Monitor
         & info [ "lang" ] ~docv:"L" ~doc:"Implementation language.")
  in
  let capacity = Arg.(value & opt int 1 & info [ "capacity" ] ~docv:"N") in
  let producers = Arg.(value & opt int 1 & info [ "producers" ] ~docv:"N") in
  let consumers = Arg.(value & opt int 1 & info [ "consumers" ] ~docv:"N") in
  let items = Arg.(value & opt int 2 & info [ "items" ] ~docv:"N" ~doc:"Items per producer.") in
  let run lang capacity producers consumers items restrict reduction (exact_keys, audit_keys) jobs batch budget resil json obs =
    obs_init obs;
    install_signals budget;
    let load = Runner.Buffer { lang; capacity; producers; consumers; items } in
    let resilience =
      resilience_of ~command:"buffer" ~params:(Runner.params_string load)
        ~reduction ~exact_keys resil
    in
    let r =
      Runner.run load
        (runner_opts ~reduction ~exact_keys ~audit_keys ~jobs ~batch ~resilience)
        ~budget ~restrict
    in
    obs_finish ~json obs (Runner.print_report ~json ~command:"buffer" r)
  in
  Cmd.v
    (Cmd.info "buffer" ~doc:"Verify a bounded-buffer solution.")
    Term.(const run $ lang $ capacity $ producers $ consumers $ items $ restrict_term $ por_term $ keys_term $ jobs_term $ batch_term $ budget_term $ resilience_term $ json_flag $ obs_term)

(* ------------------------------------------------------------------ *)
(* rwd: distributed Readers/Writers                                    *)
(* ------------------------------------------------------------------ *)

let rwd_cmd =
  let lang =
    Arg.(value & opt (enum [ ("csp", `Csp); ("ada", `Ada) ]) `Csp
         & info [ "lang" ] ~docv:"L" ~doc:"Implementation language.")
  in
  let readers = Arg.(value & opt int 1 & info [ "readers" ] ~docv:"N") in
  let writers = Arg.(value & opt int 1 & info [ "writers" ] ~docv:"N") in
  let broken =
    Arg.(value & flag & info [ "no-priority" ] ~doc:"Use the priority-less mutant.")
  in
  let run lang readers writers broken restrict reduction (exact_keys, audit_keys) jobs batch budget resil json obs =
    obs_init obs;
    install_signals budget;
    let load = Runner.Rwd { lang; readers; writers; broken } in
    let resilience =
      resilience_of ~command:"rwd" ~params:(Runner.params_string load)
        ~reduction ~exact_keys resil
    in
    let r =
      Runner.run load
        (runner_opts ~reduction ~exact_keys ~audit_keys ~jobs ~batch ~resilience)
        ~budget ~restrict
    in
    obs_finish ~json obs (Runner.print_report ~json ~command:"rwd" r)
  in
  Cmd.v
    (Cmd.info "rwd"
       ~doc:"Verify the distributed (CSP/ADA) Readers/Writers solutions.")
    Term.(const run $ lang $ readers $ writers $ broken $ restrict_term $ por_term $ keys_term $ jobs_term $ batch_term $ budget_term $ resilience_term $ json_flag $ obs_term)

(* ------------------------------------------------------------------ *)
(* fuzz: differential fuzzing across the engine lattice                *)
(* ------------------------------------------------------------------ *)

(* Everything fuzz prints to stdout is derived from counts — never wall
   time — so two runs with the same --seed/--iters are byte-identical
   (the CI determinism gate depends on it). Throughput goes to stderr. *)

let positive_conv name =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Ok n
    | Some _ | None ->
        Error (`Msg (Printf.sprintf "%S is not a valid %s (expected a positive integer)" s name))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let seconds_conv =
  let parse s =
    match float_of_string_opt (String.trim s) with
    | Some f when f >= 0. -> Ok f
    | Some _ | None ->
        Error (`Msg (Printf.sprintf "%S is not a valid duration (expected seconds >= 0)" s))
  in
  Arg.conv ~docv:"SECS" (parse, Format.pp_print_float)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"N"
             ~doc:"Generator seed. A (seed, iters) pair names the same \
                   instance stream — and therefore the same stdout — on \
                   every run.")
  in
  let iters =
    Arg.(value & opt (positive_conv "iteration count") 100
         & info [ "iters" ] ~docv:"N"
             ~doc:"Instances to generate and cross-check (default 100).")
  in
  let time_budget =
    Arg.(value & opt (some seconds_conv) None
         & info [ "time-budget" ] ~docv:"SECS"
             ~doc:"Stop starting new instances after $(docv) wall seconds \
                   (a bounded smoke run still exits 0).")
  in
  let corpus =
    Arg.(value & opt string "fuzz/corpus"
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Where shrunk disagreeing reproducers are written \
                   (default fuzz/corpus; created on first failure).")
  in
  let max_configs =
    Arg.(value & opt (positive_conv "configuration cap") 1_000_000
         & info [ "max-configs" ] ~docv:"N"
             ~doc:"Per-cell configuration cap; a generated instance whose \
                   baseline exhausts it is skipped, not failed.")
  in
  let run seed iters time_budget corpus max_configs =
    let module FD = Fuzz.Driver in
    let module FO = Fuzz.Oracle in
    Printf.printf "fuzz: seed=%d iters=%d lattice=%d cells\n%!" seed iters
      (List.length FO.lattice);
    let o =
      FD.run ?time_budget ~max_configs ~corpus_dir:corpus ~log:print_endline
        ~seed ~iters ()
    in
    match o.FD.o_failure with
    | None ->
        Printf.printf "fuzz: %d/%d instances agreed across %d cells (%d cell runs)\n"
          o.FD.o_ran o.FD.o_iters o.FD.o_cells (o.FD.o_ran * o.FD.o_cells);
        print_endline "PASS";
        if o.FD.o_elapsed > 0. then
          Printf.eprintf "fuzz: %d configurations in %.2fs (%.0f configs/s)\n"
            o.FD.o_explored o.FD.o_elapsed
            (float_of_int o.FD.o_explored /. o.FD.o_elapsed);
        0
    | Some f ->
        let shrunk = f.FD.f_shrunk in
        Printf.printf "fuzz: DISAGREEMENT at instance %d (%s)\n" f.FD.f_index
          (Fuzz.Case.lang f.FD.f_case.Fuzz.Case.prog);
        Format.printf "  %a@." FO.pp_disagreement f.FD.f_disagreement;
        Printf.printf "  original: %s\n" (Fuzz.Case.to_string f.FD.f_case);
        Printf.printf "  shrunk (%d steps, %d -> %d statements): %s\n" f.FD.f_steps
          (Fuzz.Case.size f.FD.f_case.Fuzz.Case.prog)
          (Fuzz.Case.size shrunk.Fuzz.Case.prog)
          (Fuzz.Case.to_string shrunk);
        (match f.FD.f_corpus_path with
        | Some path -> Printf.printf "  reproducer written to %s\n" path
        | None -> ());
        print_endline "FAIL";
        1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differentially fuzz the exploration engines: random \
             Monitor/CSP/ADA programs and restrictions, cross-checked \
             over {POR on,off} x {jobs 1,2,8} x {fp,exact keys} x \
             {unbounded,bitstate} plus two batched-scheduler cells \
             (jobs 8, batch 64) and two source-DPOR cells (--reduction \
             source); disagreements are shrunk and written to the \
             reproducer corpus.")
    Term.(const run $ seed $ iters $ time_budget $ corpus $ max_configs)

(* ------------------------------------------------------------------ *)
(* matrix: the parameterized workload sweep                            *)
(* ------------------------------------------------------------------ *)

let matrix_cmd =
  let family_conv =
    Arg.enum (List.map (fun f -> (f, f)) Fuzz.Matrix.family_names)
  in
  let family =
    Arg.(value & opt_all family_conv []
         & info [ "family" ] ~docv:"F"
             ~doc:(Printf.sprintf
                     "Workload family to sweep (repeatable; default all). \
                      One of: %s."
                     (String.concat ", " Fuzz.Matrix.family_names)))
  in
  let scale =
    Arg.(value & opt (enum [ ("small", `Small); ("wide", `Wide) ]) `Small
         & info [ "scale" ] ~docv:"S"
             ~doc:"Grid size: small (CI-friendly) or wide (adds the large \
                   instances the resilience ladder targets).")
  in
  let max_configs =
    Arg.(value & opt (positive_conv "configuration cap") 2_000_000
         & info [ "max-configs" ] ~docv:"N"
             ~doc:"Per-cell configuration cap; exceeding it yields an \
                   inconclusive row, never a crash.")
  in
  let time_budget =
    Arg.(value & opt (some seconds_conv) None
         & info [ "time-budget" ] ~docv:"SECS"
             ~doc:"Overall wall budget: a running cell is cut to an \
                   inconclusive row at the remaining budget; cells not \
                   yet started are emitted as skipped rows.")
  in
  let no_timings =
    Arg.(value & flag
         & info [ "no-timings" ]
             ~doc:"Omit wall_s/configs_per_sec from the rows, making the \
                   report byte-deterministic for a given tree.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the JSON report to $(docv) instead of stdout.")
  in
  let run family scale jobs max_configs time_budget no_timings out =
    let module M = Fuzz.Matrix in
    let cells = M.cells ~scale family in
    let started = Unix.gettimeofday () in
    let remaining () =
      Option.map (fun b -> Float.max 0. (b -. (Unix.gettimeofday () -. started))) time_budget
    in
    let rows =
      List.map
        (fun c ->
          match remaining () with
          | Some r when r <= 0. -> M.skipped c
          | r -> M.run_cell ~jobs ~max_configs ?timeout:r ~timings:(not no_timings) c)
        cells
    in
    let json = M.report_json rows in
    (match out with
    | None -> print_endline json
    | Some file ->
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (json ^ "\n"));
        Printf.printf "matrix: wrote %d rows to %s\n" (List.length rows) file);
    if List.exists (fun r -> r.M.r_status = "falsified") rows then 1
    else if
      List.exists (fun r -> r.M.r_status = "inconclusive" || r.M.r_status = "skipped") rows
    then 2
    else 0
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:"Sweep the parameterized lib/problems workload matrix and \
             emit one BENCH-schema JSON row per cell.")
    Term.(const run $ family $ scale $ jobs_term $ max_configs $ time_budget $ no_timings $ out)

(* ------------------------------------------------------------------ *)
(* parse                                                               *)
(* ------------------------------------------------------------------ *)

let parse_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"A specification in GEM's concrete syntax (.gem).")
  in
  let run file =
    let ic = open_in file in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Parser.parse_spec src with
    | Ok spec ->
        Format.printf "%a@." Spec.pp spec;
        Printf.printf "\n%d element(s), %d group(s), %d restriction(s), %d thread(s)\n"
          (List.length spec.Spec.elements)
          (List.length spec.Spec.groups)
          (Spec.restriction_count spec)
          (List.length spec.Spec.threads);
        0
    | Error m ->
        Printf.eprintf "parse error: %s\n" m;
        3
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse and echo a GEM specification file.")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* db / life                                                           *)
(* ------------------------------------------------------------------ *)

let db_cmd =
  let sites = Arg.(value & opt int 3 & info [ "sites" ] ~docv:"N") in
  let run sites reduction (exact_keys, audit_keys) jobs batch budget resil json obs =
    obs_init obs;
    install_signals budget;
    let load = Runner.Db { sites } in
    let resilience =
      resilience_of ~command:"db" ~params:(Runner.params_string load)
        ~reduction ~exact_keys resil
    in
    let r =
      Runner.run load
        (runner_opts ~reduction ~exact_keys ~audit_keys ~jobs ~batch ~resilience)
        ~budget ~restrict:None
    in
    obs_finish ~json obs (Runner.print_report ~json ~command:"db" r)
  in
  Cmd.v (Cmd.info "db" ~doc:"Explore the distributed database update.")
    Term.(const run $ sites $ por_term $ keys_term $ jobs_term $ batch_term $ budget_term $ resilience_term $ json_flag $ obs_term)

let life_cmd =
  let width = Arg.(value & opt int 4 & info [ "width" ] ~docv:"N") in
  let height = Arg.(value & opt int 4 & info [ "height" ] ~docv:"N") in
  let generations = Arg.(value & opt int 2 & info [ "generations" ] ~docv:"N") in
  let run width height generations budget json obs =
    obs_init obs;
    let load = Runner.Life { width; height; generations } in
    let r =
      Runner.run load
        (runner_opts ~reduction:None ~exact_keys:None ~audit_keys:None ~jobs:1
           ~batch:64 ~resilience:Explore.no_resilience)
        ~budget ~restrict:None
    in
    obs_finish ~json obs (Runner.print_report ~json ~command:"life" r)
  in
  Cmd.v
    (Cmd.info "life" ~doc:"Check the asynchronous Game of Life.")
    Term.(const run $ width $ height $ generations $ budget_term $ json_flag $ obs_term)

(* ------------------------------------------------------------------ *)
(* serve / client                                                      *)
(* ------------------------------------------------------------------ *)

let socket_term =
  Arg.(value & opt string "gemcheck.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path (default gemcheck.sock in the \
                 current directory).")

let serve_cmd =
  let cache_size =
    Arg.(value & opt (positive_conv "cache size") 128
         & info [ "cache-size" ] ~docv:"N"
             ~doc:"Retained entries in the verdict cache and in the \
                   exploration cache (default 128). In-flight requests \
                   never count against it.")
  in
  let run socket cache_size obs =
    obs_init obs;
    match Server.create ~socket () with
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "gemcheck: cannot listen on %s: %s\n" socket
          (Unix.error_message e);
        3
    | server ->
        let state = Handler.create ~cache_size () in
        (* SIGINT/SIGTERM drain: stop accepting, let in-flight checks
           finish and flush, remove the socket file, exit 0. *)
        List.iter
          (fun s ->
            try
              Sys.set_signal s
                (Sys.Signal_handle (fun _ -> Server.request_stop server))
            with Invalid_argument _ | Sys_error _ -> ())
          [ Sys.sigint; Sys.sigterm ];
        Printf.printf "gemcheck: serving on %s (cache %d)\n%!" socket
          cache_size;
        Server.run server ~handler:(Handler.handle state);
        obs_finish ~json:false obs 0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the checking daemon: a Unix-socket service answering \
             line-framed check requests from a verdict cache, with \
             single-flight coalescing of concurrent duplicates and \
             exploration sharing across restrictions. Responses carry \
             cache provenance; bodies are byte-identical to the \
             equivalent one-shot --json reports.")
    Term.(const run $ socket_term $ cache_size $ obs_term)

let client_cmd =
  let request_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"REQUEST"
             ~doc:"One request line, e.g. 'check rw readers=2 writers=1' \
                   or 'ping' or 'stats'.")
  in
  let run socket request =
    match Client.request ~socket request with
    | Error m ->
        Printf.eprintf "gemcheck: %s\n" m;
        3
    | Ok resp ->
        (* Provenance to stderr, report body to stdout — so the body can
           be compared byte-for-byte against a one-shot --json run. *)
        Printf.eprintf "%s\n" resp.Client.header;
        (match resp.Client.error with
        | Some e -> Printf.eprintf "gemcheck: daemon: %s\n" e
        | None -> ());
        (match resp.Client.body with
        | [] -> ()
        | body -> print_string (String.concat "\n" body));
        if resp.Client.code >= 0 && resp.Client.code <= 3 then resp.Client.code
        else 3
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running serve daemon and print the \
             response body (stdout) and provenance header (stderr); the \
             exit code is the verdict's.")
    Term.(const run $ socket_term $ request_arg)

let () =
  let doc = "GEM concurrency specification and verification toolkit" in
  let info =
    (* No ~version: the rw subcommand claims --version for the problem
       version, per the paper's terminology. *)
    Cmd.info "gemcheck" ~doc
      ~man:
        [
          `S Manpage.s_exit_status;
          `P "0 — verified; 1 — falsified (a violation or deadlock was found); \
              2 — inconclusive (a resource budget was exhausted before \
              coverage finished); 3 — usage or internal error.";
          `S Manpage.s_environment;
          `P "GEM_FAULT=SEED[:PERIOD[:POINTS]] arms the deterministic \
              fault-injection harness (test/CI instrument): roughly one in \
              PERIOD draws fails at the eligible injection points (alloc, \
              spill-io, checkpoint-io, domain-start). Injected faults only \
              ever degrade verdicts to INCONCLUSIVE — a malformed spec is a \
              usage error.";
        ]
  in
  (* Armed before any command runs so every injection point sees the same
     deterministic draw stream. A set-but-malformed spec must not
     silently run unfaulted (CI legs depend on the faults firing). *)
  (match Faults.arm_from_env () with
  | Ok _ -> ()
  | Error msg ->
      Printf.eprintf "gemcheck: %s\n" msg;
      exit 3);
  let code =
    try
      Cmd.eval' ~catch:false
        (Cmd.group info
           [
             experiments_cmd; rw_cmd; rwd_cmd; buffer_cmd; db_cmd; life_cmd;
             fuzz_cmd; matrix_cmd; parse_cmd; serve_cmd; client_cmd;
           ])
    with
    | Explore.Resume_error msg ->
        Printf.eprintf "gemcheck: %s\n" msg;
        3
    | e ->
        Printf.eprintf "gemcheck: internal error: %s\n" (Printexc.to_string e);
        3
  in
  (* Cmdliner reports CLI/internal errors with its own codes; fold them
     into the documented contract (3 = usage/internal). *)
  exit (if code <= 2 then code else 3)
