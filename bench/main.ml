(* Benchmark harness: one Bechamel test per reproduction experiment
   (DESIGN.md §4 / EXPERIMENTS.md). The paper reports no performance
   tables, so these benches measure the cost of each mechanized
   claim-check — workload generation is done up front, the timed kernel is
   the exploration/checking work.

   Run with: dune exec bench/main.exe

   `dune exec bench/main.exe -- --budget-only` skips the Bechamel suite
   and only measures budget-accounting overhead (writes BENCH_budget.json
   in the current directory) — cheap enough for CI.

   `dune exec bench/main.exe -- --por-only` only compares states explored
   with and without partial-order reduction (writes BENCH_por.json).

   `dune exec bench/main.exe -- --dpor-only` only compares states
   explored across the three reduction engines (--reduction
   none/sleep/source; writes BENCH_dpor.json, which the CI bench gate
   reads: source must never explore more than sleep, with identical
   fingerprint multisets on completed rows).

   `dune exec bench/main.exe -- --parallel-only` only measures wall-clock
   scaling of domain-parallel exploration across (--jobs 1/2/4 x --batch
   1/64/1024), POR on and off (writes BENCH_parallel.json, including the
   jobs-4 speedup gate record CI reads). *)

open Bechamel
open Toolkit

(* [open Gem] shadows the systhreads [Thread] with the specification
   layer's event-thread module; keep the OS one reachable for the serve
   bench. *)
module Os_thread = Thread

open Gem

(* ------------------------------------------------------------------ *)
(* Report provenance                                                   *)
(* ------------------------------------------------------------------ *)

(* Every BENCH_*.json carries a schema version and the git revision it
   was measured at, so trajectory tooling can line reports up across
   commits. The revision comes from git when available, from the CI
   environment otherwise, and degrades to "unknown" in an export. *)

let bench_schema_version = 1

let git_rev =
  let from_git () =
    try
      let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> Some line
      | _ -> None
    with _ -> None
  in
  match from_git () with
  | Some rev -> rev
  | None -> (
      match Sys.getenv_opt "GITHUB_SHA" with
      | Some rev when rev <> "" -> rev
      | _ -> "unknown")

let provenance_fields =
  Printf.sprintf {|"schema_version":%d,"git_rev":"%s"|} bench_schema_version
    git_rev

(* The bench budget replaces the old hard-coded
   [Strategy.Linearizations (Some 200)]: the run cap is now a budget knob
   and the strategy is derived from it. *)
let bench_budget = Budget.make ~max_runs:200 ()
let strategy = Strategy.of_budget bench_budget

(* ------------------------------------------------------------------ *)
(* Pre-built workloads                                                 *)
(* ------------------------------------------------------------------ *)

let tick_etype = Etype.make "Tick" ~events:[ { Etype.klass = "Tick"; schema = [] } ] ()

let random_computation n =
  let rng = Random.State.make [| 7; n |] in
  let b = Build.create () in
  let handles =
    Array.init n (fun _ ->
        Build.emit b ~element:(Printf.sprintf "X%d" (Random.State.int rng 4)) ~klass:"Tick" ())
  in
  for j = 1 to n - 1 do
    if Random.State.int rng 3 = 0 then
      Build.enable b handles.(Random.State.int rng j) handles.(j)
  done;
  for i = 0 to 3 do
    Build.declare_element b (Printf.sprintf "X%d" i)
  done;
  Build.finish b

let legality_spec =
  Spec.make "random" ~elements:(List.init 4 (fun i -> (Printf.sprintf "X%d" i, tick_etype))) ()

let rand10 = random_computation 10
let rand50 = random_computation 50
let rand100 = random_computation 100

let diamond =
  let b = Build.create () in
  let e1 = Build.emit b ~element:"E1" ~klass:"A" () in
  let e2 = Build.emit_enabled_by b ~by:e1 ~element:"E2" ~klass:"B" () in
  let e3 = Build.emit_enabled_by b ~by:e1 ~element:"E3" ~klass:"C" () in
  let e4 = Build.emit_enabled_by b ~by:e2 ~element:"E4" ~klass:"D" () in
  Build.enable b e3 e4;
  Build.finish b

let chains k =
  let b = Build.create () in
  for i = 0 to k - 1 do
    let a = Build.emit b ~element:(Printf.sprintf "C%d" i) ~klass:"Tick" () in
    ignore (Build.emit_enabled_by b ~by:a ~element:(Printf.sprintf "C%d" i) ~klass:"Tick" ())
  done;
  Build.finish b

let chains4 = chains 4

let rw_program readers writers =
  Readers_writers.program ~monitor:Readers_writers.paper_monitor ~readers ~writers

let rw11 = rw_program 1 1
let rw21 = rw_program 2 1
let rw11_comps = (Monitor.explore rw11).Monitor.computations
let rw11_spec = Monitor.language_spec rw11

let rw11_problem v =
  Readers_writers.spec v ~users:(Readers_writers.user_names ~readers:1 ~writers:1)

let buffer_monitor_program =
  Buffer_problem.monitor_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2

let buffer_csp_program =
  Buffer_problem.csp_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2

let buffer_ada_program =
  Buffer_problem.ada_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2

let bounded2_program =
  Buffer_problem.monitor_solution ~capacity:2 ~producers:2 ~consumers:1 ~items_each:1

let rw_one_comp = Monitor.run_one ~seed:5 rw11
let blinker = [ (1, 0); (1, 1); (1, 2) ]

let rwd_csp = Rw_distributed.csp_program ~readers:1 ~writers:1
let rwd_ada = Rw_distributed.ada_program ~readers:1 ~writers:1

(* A representative footprint-disjointness check: two moves with
   interleaved (sorted, non-overlapping) element footprints, the shape
   the merge walk has to scan to the end. *)
let fp_move_a = { Explore.label = "a"; touches = [ "A"; "C"; "E"; "G" ] }
let fp_move_b = { Explore.label = "b"; touches = [ "B"; "D"; "F"; "H" ] }

let rwd_problem =
  let rnames, wnames = Rw_distributed.user_names ~readers:1 ~writers:1 in
  Rw_distributed.spec ~readers:rnames ~writers:wnames
let finish_write = Formula.(eventually (exists [ ("x", Cls "FinishWrite") ] (occurred "x")))

let priority_text =
  Formula.to_string
    (Gem.Abbrev.priority ~thread:"piRW"
       ~req_hi:(Formula.Cls_at ("control", "ReqRead"))
       ~start_hi:(Formula.Cls_at ("control", "StartRead"))
       ~req_lo:(Formula.Cls_at ("control", "ReqWrite"))
       ~start_lo:(Formula.Cls_at ("control", "StartWrite")))

let life_poset =
  Computation.temporal_exn (Life.build ~width:4 ~height:4 ~generations:2 ~alive:blinker)

(* ------------------------------------------------------------------ *)
(* One test per experiment                                             *)
(* ------------------------------------------------------------------ *)

let t name f = Test.make ~name (Staged.stage f)

let tests =
  [
    (* E1 *)
    t "legality/random-10" (fun () -> ignore (Legality.check legality_spec rand10));
    t "legality/random-50" (fun () -> ignore (Legality.check legality_spec rand50));
    t "legality/random-100" (fun () -> ignore (Legality.check legality_spec rand100));
    (* E2 *)
    t "vhs/diamond-enumerate" (fun () -> ignore (Vhs.all diamond));
    t "vhs/count-4-chains" (fun () ->
        ignore (Linext.count_step_sequences (Computation.temporal_exn chains4)));
    t "vhs/histories-diamond" (fun () -> ignore (History.all diamond));
    (* E3 *)
    t "monitor/explore-rw-1r1w" (fun () -> ignore (Monitor.explore rw11));
    t "monitor/entries-seq-check" (fun () ->
        List.iter (fun c -> ignore (Check.check rw11_spec c)) rw11_comps);
    (* E4 *)
    t "csp/io-sync" (fun () ->
        let o = Csp.explore buffer_csp_program in
        let spec = Csp.language_spec buffer_csp_program in
        List.iter (fun c -> ignore (Check.check spec c)) o.Csp.computations);
    (* E5 *)
    t "ada/rendezvous" (fun () ->
        let o = Ada.explore buffer_ada_program in
        let spec = Ada.language_spec buffer_ada_program in
        List.iter (fun c -> ignore (Check.check spec c)) o.Ada.computations);
    (* E6 *)
    t "buffer/one-slot-monitor" (fun () ->
        let o = Monitor.explore buffer_monitor_program in
        ignore
          (Refine.sat_ok ~strategy ~problem:(Buffer_problem.spec ~capacity:1)
             ~map:Buffer_problem.monitor_correspondence o.Monitor.computations));
    t "buffer/one-slot-csp" (fun () ->
        let o = Csp.explore buffer_csp_program in
        ignore
          (Refine.sat_ok ~strategy ~problem:(Buffer_problem.spec ~capacity:1)
             ~map:Buffer_problem.csp_correspondence o.Csp.computations));
    t "buffer/one-slot-ada" (fun () ->
        let o = Ada.explore buffer_ada_program in
        ignore
          (Refine.sat_ok ~strategy ~problem:(Buffer_problem.spec ~capacity:1)
             ~map:Buffer_problem.ada_correspondence o.Ada.computations));
    (* E7 *)
    t "buffer/bounded-2" (fun () ->
        let o = Monitor.explore bounded2_program in
        ignore
          (Refine.sat_ok ~strategy ~problem:(Buffer_problem.spec ~capacity:2)
             ~map:Buffer_problem.monitor_correspondence o.Monitor.computations));
    (* E8 *)
    t "rw/spec-free-for-all" (fun () ->
        ignore
          (Refine.sat_ok ~strategy ~edges:Refine.Actor_paths
             ~problem:(rw11_problem Readers_writers.Free_for_all)
             ~map:Readers_writers.correspondence rw11_comps));
    (* E9 *)
    t "rw/readers-priority" (fun () ->
        ignore
          (Refine.sat_ok ~strategy ~edges:Refine.Actor_paths
             ~problem:(rw11_problem Readers_writers.Readers_priority)
             ~map:Readers_writers.correspondence rw11_comps));
    t "rw/explore-2r1w" (fun () -> ignore (Monitor.explore rw21));
    (* E10 *)
    t "db/update-2-sites" (fun () -> ignore (Db_update.check ~sites:2 ()));
    (* E11 *)
    t "life/async-4x4x2" (fun () ->
        let comp = Life.build ~width:4 ~height:4 ~generations:2 ~alive:blinker in
        ignore
          (Check.holds (Life.spec ~width:4 ~height:4) comp
             (Life.matches_reference ~width:4 ~height:4 ~generations:2 ~alive:blinker)));
    (* E12 *)
    t "thread/label-rw" (fun () ->
        List.iter
          (fun c ->
            ignore (Spec.label_threads (rw11_problem Readers_writers.Free_for_all) c))
          (List.filter_map
             (fun c ->
               Result.to_option
                 (Refine.project ~edges:Refine.Actor_paths Readers_writers.correspondence c
                    ~elements:(rw11_problem Readers_writers.Free_for_all).Spec.elements
                    ~groups:[]))
             rw11_comps));
    (* E15 *)
    t "rwd/csp-readers-priority" (fun () ->
        let o = Csp.explore rwd_csp in
        ignore
          (Refine.sat_ok ~strategy ~problem:rwd_problem
             ~map:Rw_distributed.csp_correspondence o.Csp.computations));
    t "rwd/ada-readers-priority" (fun () ->
        let o = Ada.explore rwd_ada in
        ignore
          (Refine.sat_ok ~strategy ~problem:rwd_problem
             ~map:Rw_distributed.ada_correspondence o.Ada.computations));
    (* concrete syntax *)
    t "syntax/parse-priority" (fun () ->
        match Parser.parse_formula priority_text with
        | Ok _ -> ()
        | Error m -> failwith m);
    (* order substrate *)
    t "order/width-life-4x4x2" (fun () -> ignore (Poset.width life_poset));
    (* search-key substrate *)
    t "explore/footprint-checks" (fun () ->
        ignore (Explore.independent fp_move_a fp_move_b));
    (* E14 *)
    t "ablate/exhaustive-vhs" (fun () ->
        ignore
          (Check.check_formula ~strategy:(Strategy.Exhaustive_vhs (Some 2000)) rw11_spec
             rw_one_comp ~name:"p" finish_write));
    t "ablate/linearizations" (fun () ->
        ignore
          (Check.check_formula ~strategy:(Strategy.Linearizations (Some 2000)) rw11_spec
             rw_one_comp ~name:"p" finish_write));
    t "ablate/sampled-50" (fun () ->
        ignore
          (Check.check_formula ~strategy:(Strategy.Sampled { seed = 3; count = 50 })
             rw11_spec rw_one_comp ~name:"p" finish_write));
  ]

(* ------------------------------------------------------------------ *)
(* Budget-accounting overhead (E14 workload)                           *)
(* ------------------------------------------------------------------ *)

(* Same temporal check as the E14 ablation tests; the budgeted variant
   carries a live (but never-exhausted) budget so every run goes through
   the charge/poll path. The delta is the accounting overhead, which the
   robustness work promises stays under 5%. *)

let e14_check ?budget () =
  ignore
    (Check.check_formula ?budget ~strategy:(Strategy.Linearizations (Some 2000))
       rw11_spec rw_one_comp ~name:"p" finish_write)

let budget_overhead_report () =
  let iters = 40 in
  (* Interleave the two variants rather than timing them in blocks:
     process-lifetime drift (heap growth, cache state) otherwise lands
     entirely on whichever block runs second and swamps the real delta. *)
  let time1 f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  e14_check ();
  (* A fresh budget per iteration, as the CLI would construct one. *)
  let with_budget () =
    e14_check ~budget:(Budget.make ~timeout:3600.0 ~max_configs:max_int ()) ()
  in
  with_budget ();
  let bare_total = ref 0.0 and budgeted_total = ref 0.0 in
  for _ = 1 to iters do
    bare_total := !bare_total +. time1 (fun () -> e14_check ());
    budgeted_total := !budgeted_total +. time1 with_budget
  done;
  let bare = !bare_total /. float_of_int iters in
  let budgeted = !budgeted_total /. float_of_int iters in
  let overhead_pct = (budgeted -. bare) /. bare *. 100.0 in
  let json =
    Printf.sprintf
      {|{%s,"workload":"E14 linearizations-2000 temporal check","iters":%d,"bare_s_per_check":%.6e,"budgeted_s_per_check":%.6e,"overhead_pct":%.2f,"threshold_pct":5.0}|}
      provenance_fields iters bare budgeted overhead_pct
  in
  let oc = open_out "BENCH_budget.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  Printf.printf "budget accounting overhead on E14 workload: %.2f%% (%s)\n"
    overhead_pct
    (if overhead_pct < 5.0 then "within 5% target" else "ABOVE 5% target");
  Printf.printf "wrote BENCH_budget.json\n%!"

(* ------------------------------------------------------------------ *)
(* Partial-order reduction: states explored with and without POR       *)
(* ------------------------------------------------------------------ *)

(* Each workload is explored twice — reduced search vs plain DFS — and
   the comparison lands in BENCH_por.json. The full search is capped:
   cyclic workloads (e.g. the distributed ADA Readers/Writers server
   loops) are intractable without reduction, which is the point; a
   capped row reports [full_complete:false]. *)
let por_workloads =
  [
    ( "rw-monitor-1r1w",
      fun por max_configs ->
        let o = Monitor.explore ~por ~max_configs (rw_program 1 1) in
        (o.Monitor.explored, o.Monitor.reduced, List.length o.Monitor.computations, o.Monitor.exhausted = None) );
    ( "rw-monitor-2r1w",
      fun por max_configs ->
        let o = Monitor.explore ~por ~max_configs (rw_program 2 1) in
        (o.Monitor.explored, o.Monitor.reduced, List.length o.Monitor.computations, o.Monitor.exhausted = None) );
    ( "buffer-monitor-1p1c2i",
      fun por max_configs ->
        let o = Monitor.explore ~por ~max_configs buffer_monitor_program in
        (o.Monitor.explored, o.Monitor.reduced, List.length o.Monitor.computations, o.Monitor.exhausted = None) );
    ( "buffer-csp-1p1c2i",
      fun por max_configs ->
        let o = Csp.explore ~por ~max_configs buffer_csp_program in
        (o.Csp.explored, o.Csp.reduced, List.length o.Csp.computations, o.Csp.exhausted = None) );
    ( "buffer-ada-1p1c2i",
      fun por max_configs ->
        let o = Ada.explore ~por ~max_configs buffer_ada_program in
        (o.Ada.explored, o.Ada.reduced, List.length o.Ada.computations, o.Ada.exhausted = None) );
    ( "rwd-csp-1r1w",
      fun por max_configs ->
        let o = Csp.explore ~por ~max_configs rwd_csp in
        (o.Csp.explored, o.Csp.reduced, List.length o.Csp.computations, o.Csp.exhausted = None) );
    ( "rwd-ada-1r1w",
      fun por max_configs ->
        let o = Ada.explore ~por ~max_configs rwd_ada in
        (o.Ada.explored, o.Ada.reduced, List.length o.Ada.computations, o.Ada.exhausted = None) );
    ( "db-update-2-sites",
      fun por max_configs ->
        let r = Db_update.check ~por ~max_configs ~sites:2 () in
        (r.Db_update.explored, r.Db_update.reduced, r.Db_update.computations, r.Db_update.exhausted = None) );
  ]

let por_report () =
  let full_cap = 200_000 in
  let rows =
    List.map
      (fun (name, run) ->
        let por_explored, por_reduced, por_comps, por_complete = run true max_int in
        let full_explored, _, full_comps, full_complete = run false full_cap in
        let ratio = float_of_int full_explored /. float_of_int (max 1 por_explored) in
        Printf.printf
          "%-24s POR: %7d explored (%d pruned, %d computations)  full: %7d explored%s  %.1fx\n%!"
          name por_explored por_reduced por_comps full_explored
          (if full_complete then "" else " [capped]")
          ratio;
        ignore full_comps;
        Printf.sprintf
          {|{"workload":"%s","por_explored":%d,"por_reduced":%d,"por_computations":%d,"por_complete":%b,"full_explored":%d,"full_computations":%d,"full_complete":%b,"reduction_ratio":%.2f}|}
          name por_explored por_reduced por_comps por_complete full_explored
          full_comps full_complete ratio)
      por_workloads
  in
  let oc = open_out "BENCH_por.json" in
  output_string oc
    (Printf.sprintf "{%s,\"rows\":[\n  %s\n]}\n" provenance_fields
       (String.concat ",\n  " rows));
  close_out oc;
  Printf.printf "wrote BENCH_por.json\n%!"

(* ------------------------------------------------------------------ *)
(* Reduction engines: plain DFS vs sleep sets vs source-DPOR           *)
(* ------------------------------------------------------------------ *)

(* Each workload is explored once per reduction engine and the
   three-way comparison lands in BENCH_dpor.json. Source-DPOR's
   contract is a strict refinement of sleep sets: on every workload it
   must visit no more configurations than the sleep engine while
   producing the exact same completed-computation fingerprint multiset,
   and on the rendezvous-heavy ADA families it visits asymptotically
   fewer. Each row carries its own configuration cap — 200k (the same
   budget as the plain-DFS column of BENCH_por.json) except the
   promoted large instances below; a capped run reports
   [*_complete:false] and its fingerprint comparison is vacuously true
   (a truncated sample is traversal-order-dependent). The CI bench gate
   reads this file: source_explored must never exceed sleep_explored,
   and every row must report [fp_identical:true].

   rw-monitor-3r1w and rwd-ada-2r1w are the promoted larger instances:
   big enough that plain DFS always caps while both reduced engines
   still complete, so the sleep/source gap is visible at scale rather
   than only on toy programs (rwd-ada-2r1w needs the 1M cap: sleep
   completes near 780k configurations, source near 340k). *)
let dpor_cap = 200_000
let dpor_wide_cap = 1_000_000

let dpor_workloads =
  let mon name cap program =
    ( name, cap,
      fun reduction max_configs ->
        let o = Monitor.explore ~reduction ~max_configs program in
        ( o.Monitor.explored, o.Monitor.reduced,
          List.sort compare (List.map Explore.fingerprint o.Monitor.computations),
          o.Monitor.exhausted = None ) )
  and csp name cap program =
    ( name, cap,
      fun reduction max_configs ->
        let o = Csp.explore ~reduction ~max_configs program in
        ( o.Csp.explored, o.Csp.reduced,
          List.sort compare (List.map Explore.fingerprint o.Csp.computations),
          o.Csp.exhausted = None ) )
  and ada name cap program =
    ( name, cap,
      fun reduction max_configs ->
        let o = Ada.explore ~reduction ~max_configs program in
        ( o.Ada.explored, o.Ada.reduced,
          List.sort compare (List.map Explore.fingerprint o.Ada.computations),
          o.Ada.exhausted = None ) )
  in
  [
    mon "rw-monitor-1r1w" dpor_cap (rw_program 1 1);
    mon "rw-monitor-2r1w" dpor_cap (rw_program 2 1);
    mon "rw-monitor-3r1w" dpor_cap (rw_program 3 1);
    mon "buffer-monitor-1p1c2i" dpor_cap buffer_monitor_program;
    csp "buffer-csp-1p1c2i" dpor_cap buffer_csp_program;
    ada "buffer-ada-1p1c2i" dpor_cap buffer_ada_program;
    csp "rwd-csp-1r1w" dpor_cap rwd_csp;
    ada "rwd-ada-1r1w" dpor_cap rwd_ada;
    ada "rwd-ada-2r1w" dpor_wide_cap
      (Rw_distributed.ada_program ~readers:2 ~writers:1);
    ( "db-update-2-sites", dpor_cap,
      fun reduction max_configs ->
        (* Db_update reports computation counts, not fingerprints; the
           count stands in as the comparison signature. *)
        let r = Db_update.check ~reduction ~max_configs ~sites:2 () in
        ( r.Db_update.explored, r.Db_update.reduced,
          [ string_of_int r.Db_update.computations ],
          r.Db_update.exhausted = None ) );
  ]

let dpor_report () =
  let rows =
    List.map
      (fun (name, cap, run) ->
        let none_explored, _, _, none_complete = run Explore.No_reduction cap in
        let sleep_explored, sleep_reduced, sleep_sig, sleep_complete =
          run Explore.Sleep_sets cap
        in
        let source_explored, source_reduced, source_sig, source_complete =
          run Explore.Source_sets cap
        in
        let fp_identical =
          (not (sleep_complete && source_complete)) || sleep_sig = source_sig
        in
        let ratio =
          float_of_int sleep_explored /. float_of_int (max 1 source_explored)
        in
        Printf.printf
          "%-24s none: %7d%s  sleep: %7d%s  source: %7d%s  %.2fx%s\n%!" name
          none_explored
          (if none_complete then "" else "*")
          sleep_explored
          (if sleep_complete then "" else "*")
          source_explored
          (if source_complete then "" else "*")
          ratio
          (if fp_identical then "" else "  FP-DRIFT");
        Printf.sprintf
          {|{"workload":"%s","cap":%d,"none_explored":%d,"none_complete":%b,"sleep_explored":%d,"sleep_reduced":%d,"sleep_complete":%b,"source_explored":%d,"source_reduced":%d,"source_complete":%b,"fp_identical":%b,"sleep_vs_source_ratio":%.2f}|}
          name cap none_explored none_complete sleep_explored sleep_reduced
          sleep_complete source_explored source_reduced source_complete
          fp_identical ratio)
      dpor_workloads
  in
  let oc = open_out "BENCH_dpor.json" in
  output_string oc
    (Printf.sprintf "{%s,\"rows\":[\n  %s\n]}\n" provenance_fields
       (String.concat ",\n  " rows));
  close_out oc;
  Printf.printf "wrote BENCH_dpor.json (* = capped)\n%!"

(* ------------------------------------------------------------------ *)
(* Parallel exploration: (jobs x batch) wall-clock scaling             *)
(* ------------------------------------------------------------------ *)

(* Each workload is explored across (jobs in {2,4}) x (batch in
   {1,64,1024}), with POR on and off, against a jobs=1 baseline, and
   the scaling lands in BENCH_parallel.json. Besides wall time and
   speedup over the sequential run, every leg records whether the
   parallel run produced the exact same computation-fingerprint multiset
   as jobs=1 — the determinism contract, checked on real workloads, not
   just the test programs. The "cores" field records how many hardware
   threads the host actually offers: speedups are only physically
   possible up to that number, so a single-core container honestly
   reports ~1.0x.

   The report also carries a "gate" record for CI: jobs=4 (best batch)
   must be at least 2x over jobs=1 on rw-monitor-2r1w with POR off. On
   hosts with fewer than 4 hardware threads the gate cannot physically
   pass, so it is skipped with a logged reason rather than reporting a
   meaningless failure. *)
(* Only workloads whose exploration terminates without a budget cut:
   the fingerprint-identity contract applies to complete exploration (a
   truncated sample is inherently traversal-order-dependent), so capped
   workloads like the plain-DFS distributed ADA servers belong in
   por_report, not here. *)
let parallel_workloads =
  [
    ( "rw-monitor-2r1w",
      fun por jobs batch ->
        let o = Monitor.explore ~por ~jobs ~batch (rw_program 2 1) in
        (o.Monitor.explored, o.Monitor.exhausted = None,
         List.map Explore.fingerprint o.Monitor.computations) );
    ( "buffer-monitor-1p1c2i",
      fun por jobs batch ->
        let o = Monitor.explore ~por ~jobs ~batch buffer_monitor_program in
        (o.Monitor.explored, o.Monitor.exhausted = None,
         List.map Explore.fingerprint o.Monitor.computations) );
    ( "buffer-ada-1p1c2i",
      fun por jobs batch ->
        let o = Ada.explore ~por ~jobs ~batch buffer_ada_program in
        (o.Ada.explored, o.Ada.exhausted = None,
         List.map Explore.fingerprint o.Ada.computations) );
    ( "rwd-csp-1r1w",
      fun por jobs batch ->
        let o = Csp.explore ~por ~jobs ~batch rwd_csp in
        (o.Csp.explored, o.Csp.exhausted = None,
         List.map Explore.fingerprint o.Csp.computations) );
    ( "db-update-3-sites",
      fun por jobs batch ->
        let o = Csp.explore ~por ~jobs ~batch (Db_update.program ~sites:3) in
        (o.Csp.explored, o.Csp.exhausted = None,
         List.map Explore.fingerprint o.Csp.computations) );
  ]

let parallel_gate_workload = "rw-monitor-2r1w"
let parallel_gate_jobs = 4
let parallel_gate_target = 2.0

let parallel_report () =
  let cores = Domain.recommended_domain_count () in
  let batches = [ 1; 64; 1024 ] in
  let time_run f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  (* (jobs=4, POR-off, best batch) speedup on the gate workload,
     collected while sweeping. *)
  let gate_best = ref None in
  let rows =
    List.concat_map
      (fun (name, run) ->
        List.map
          (fun por ->
            let base_s, (base_explored, base_complete, base_fps) =
              time_run (fun () -> run por 1 1)
            in
            let legs =
              List.concat_map
                (fun jobs ->
                  List.map
                    (fun batch ->
                      let s, (explored, complete, fps) =
                        time_run (fun () -> run por jobs batch)
                      in
                      let speedup = base_s /. Float.max 1e-9 s in
                      let identical =
                        List.sort compare fps = List.sort compare base_fps
                      in
                      if
                        name = parallel_gate_workload && (not por)
                        && jobs = parallel_gate_jobs
                      then
                        gate_best :=
                          Some
                            (match !gate_best with
                            | Some (best, b) when best >= speedup -> (best, b)
                            | _ -> (speedup, batch));
                      Printf.printf
                        "%-22s por=%-5b jobs=%d batch=%-4d  %8.3fs  %5.2fx vs jobs=1  explored=%-7d %s\n%!"
                        name por jobs batch s speedup explored
                        (if identical then "verdict-identical"
                         else if complete && base_complete then "VERDICT-MISMATCH"
                         else "sample-differs [exhausted]");
                      Printf.sprintf
                        {|{"jobs":%d,"batch":%d,"wall_s":%.4f,"speedup_vs_1":%.3f,"explored":%d,"complete":%b,"fingerprints_identical":%b}|}
                        jobs batch s speedup explored complete identical)
                    batches)
                [ 2; 4 ]
            in
            Printf.printf "%-22s por=%-5b jobs=1  %8.3fs  (baseline, explored=%d)\n%!"
              name por base_s base_explored;
            Printf.sprintf
              {|{"workload":"%s","por":%b,"computations":%d,"baseline":{"jobs":1,"batch":1,"wall_s":%.4f,"explored":%d,"complete":%b},"parallel":[%s]}|}
              name por (List.length base_fps) base_s base_explored base_complete
              (String.concat "," legs))
          [ true; false ])
      parallel_workloads
  in
  let gate_speedup, gate_batch =
    match !gate_best with Some (s, b) -> (s, b) | None -> (0.0, 0)
  in
  let skipped_reason =
    if cores < parallel_gate_jobs then
      Some
        (Printf.sprintf
           "host offers %d hardware thread(s); a %.1fx speedup at jobs=%d needs >= %d"
           cores parallel_gate_target parallel_gate_jobs parallel_gate_jobs)
    else None
  in
  let gate_passed = gate_speedup >= parallel_gate_target in
  let gate_json =
    Printf.sprintf
      {|{"workload":"%s","por":false,"jobs":%d,"best_batch":%d,"speedup":%.3f,"target":%.1f,"passed":%b,"skipped_reason":%s}|}
      parallel_gate_workload parallel_gate_jobs gate_batch gate_speedup
      parallel_gate_target gate_passed
      (match skipped_reason with
      | Some r -> Printf.sprintf "%S" r
      | None -> "null")
  in
  (match skipped_reason with
  | Some r ->
      Printf.printf "speedup gate SKIPPED: %s (measured %.2fx at best batch %d)\n%!"
        r gate_speedup gate_batch
  | None ->
      Printf.printf "speedup gate %s: %.2fx at jobs=%d batch=%d (target %.1fx)\n%!"
        (if gate_passed then "passed" else "FAILED")
        gate_speedup parallel_gate_jobs gate_batch parallel_gate_target);
  let oc = open_out "BENCH_parallel.json" in
  output_string oc
    (Printf.sprintf {|{%s,"cores":%d,"gate":%s,"rows":[%s  %s%s]}%s|}
       provenance_fields cores gate_json "\n"
       (String.concat ",\n  " rows) "\n" "\n");
  close_out oc;
  Printf.printf "wrote BENCH_parallel.json (host offers %d hardware thread(s))\n%!" cores

(* ------------------------------------------------------------------ *)
(* Search keys: exact canonical strings vs incremental fingerprints    *)
(* ------------------------------------------------------------------ *)

(* Each workload is explored twice per measurement — once keyed on exact
   marshal-string canonical keys (--exact-keys), once on incremental
   126-bit fingerprints (the default) — POR on, jobs=1, so the only
   difference is key construction. Besides wall time and speedup, every
   row records whether the two key modes produced the same
   computation-fingerprint multiset (the byte-identical-verdict
   contract) and, from a separate untimed audited leg, the number of
   fingerprint collisions the exact-key oracle detected (must be 0).
   A microbenchmark of the sorted-footprint disjointness walk
   (Explore.independent) rides along as footprint_check_ns. *)

module T = Telemetry

let keys_workloads =
  [
    ( "rw-monitor-2r1w",
      fun ~exact ~audit ->
        let o =
          Monitor.explore ~por:true ~jobs:1 ~exact_keys:exact ~audit_keys:audit
            (rw_program 2 1)
        in
        (o.Monitor.explored, o.Monitor.exhausted = None,
         List.map Explore.fingerprint o.Monitor.computations
         @ List.map Explore.fingerprint o.Monitor.deadlocks) );
    ( "buffer-ada-1p1c2i",
      fun ~exact ~audit ->
        let o =
          Ada.explore ~por:true ~jobs:1 ~exact_keys:exact ~audit_keys:audit
            buffer_ada_program
        in
        (o.Ada.explored, o.Ada.exhausted = None,
         List.map Explore.fingerprint o.Ada.computations
         @ List.map Explore.fingerprint o.Ada.deadlocks) );
    ( "rwd-ada-1r1w",
      fun ~exact ~audit ->
        let o =
          Ada.explore ~por:true ~jobs:1 ~exact_keys:exact ~audit_keys:audit
            rwd_ada
        in
        (o.Ada.explored, o.Ada.exhausted = None,
         List.map Explore.fingerprint o.Ada.computations
         @ List.map Explore.fingerprint o.Ada.deadlocks) );
    ( "buffer-csp-1p1c2i",
      fun ~exact ~audit ->
        let o =
          Csp.explore ~por:true ~jobs:1 ~exact_keys:exact ~audit_keys:audit
            buffer_csp_program
        in
        (o.Csp.explored, o.Csp.exhausted = None,
         List.map Explore.fingerprint o.Csp.computations
         @ List.map Explore.fingerprint o.Csp.deadlocks) );
  ]

let keys_report () =
  let iters = 5 in
  (* One warm-up run, then the average of [iters] timed runs; the two key
     modes are interleaved so process-lifetime drift (heap growth, cache
     state) does not land entirely on one of them. *)
  let rows =
    List.map
      (fun (name, run) ->
        let time1 f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (Unix.gettimeofday () -. t0, r)
        in
        ignore (run ~exact:true ~audit:false);
        ignore (run ~exact:false ~audit:false);
        let exact_total = ref 0.0 and fp_total = ref 0.0 in
        let exact_r = ref (0, false, []) and fp_r = ref (0, false, []) in
        for _ = 1 to iters do
          let s, r = time1 (fun () -> run ~exact:true ~audit:false) in
          exact_total := !exact_total +. s;
          exact_r := r;
          let s, r = time1 (fun () -> run ~exact:false ~audit:false) in
          fp_total := !fp_total +. s;
          fp_r := r
        done;
        let exact_s = !exact_total /. float_of_int iters in
        let fp_s = !fp_total /. float_of_int iters in
        let speedup = exact_s /. Float.max 1e-9 fp_s in
        let exact_explored, exact_complete, exact_fps = !exact_r in
        let fp_explored, fp_complete, fp_fps = !fp_r in
        let identical =
          List.sort compare fp_fps = List.sort compare exact_fps
          && exact_complete && fp_complete
        in
        (* Untimed audited leg: fingerprint keys with the exact key as a
           collision oracle on every seen-table arrival. *)
        T.reset ();
        T.enable ();
        ignore (run ~exact:false ~audit:true);
        T.disable ();
        let collisions = T.read T.Fingerprint_collisions in
        Printf.printf
          "%-22s exact %8.4fs  fp %8.4fs  %5.2fx  explored=%-7d %s  collisions=%d\n%!"
          name exact_s fp_s speedup fp_explored
          (if identical then "verdict-identical" else "VERDICT-MISMATCH")
          collisions;
        ( speedup,
          Printf.sprintf
            {|{"workload":"%s","exact_s":%.6f,"fp_s":%.6f,"speedup":%.3f,"exact_explored":%d,"fp_explored":%d,"verdicts_identical":%b,"fingerprint_collisions":%d}|}
            name exact_s fp_s speedup exact_explored fp_explored identical
            collisions ))
      keys_workloads
  in
  let footprint_check_ns =
    let ops = 2_000_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to ops do
      ignore (Explore.independent fp_move_a fp_move_b)
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int ops *. 1e9
  in
  let fast = List.length (List.filter (fun (s, _) -> s >= 2.0) rows) in
  Printf.printf "footprint disjointness check: %.1f ns/op\n%!" footprint_check_ns;
  Printf.printf "%d/%d workloads at >= 2x\n%!" fast (List.length rows);
  let oc = open_out "BENCH_keys.json" in
  output_string oc
    (Printf.sprintf
       "{%s,\"footprint_check_ns\":%.2f,\"rows\":[\n  %s\n]}\n"
       provenance_fields footprint_check_ns
       (String.concat ",\n  " (List.map snd rows)));
  close_out oc;
  Printf.printf "wrote BENCH_keys.json\n%!"

(* ------------------------------------------------------------------ *)
(* Telemetry counters: deterministic golden values                     *)
(* ------------------------------------------------------------------ *)

(* Four workloads explored at an explicit jobs=1 with POR on — the one
   engine configuration where every counter is deterministic (sequential
   DFS, fixed visit order) — then checked with a fixed run cap. The
   counters land in two files: BENCH_stats.json (with provenance) and
   BENCH_stats_golden.json (schema_version + workloads only, no
   git_rev), which CI diffs byte-for-byte against bench/golden/stats.json
   to catch silent search-space or enumeration drift. *)

let stats_workloads =
  [
    ( "rw-monitor-2r1w",
      fun () ->
        let o = Monitor.explore ~por:true ~jobs:1 (rw_program 2 1) in
        let problem =
          Readers_writers.spec Readers_writers.Free_for_all
            ~users:(Readers_writers.user_names ~readers:2 ~writers:1)
        in
        ignore
          (Refine.sat_ok ~strategy:(Strategy.Linearizations (Some 200)) ~jobs:1
             ~edges:Refine.Actor_paths ~problem
             ~map:Readers_writers.correspondence o.Monitor.computations);
        (List.length o.Monitor.computations, List.length o.Monitor.deadlocks) );
    ( "buffer-monitor-1p1c2i",
      fun () ->
        let o = Monitor.explore ~por:true ~jobs:1 buffer_monitor_program in
        ignore
          (Refine.sat_ok ~strategy:(Strategy.Linearizations (Some 200)) ~jobs:1
             ~problem:(Buffer_problem.spec ~capacity:1)
             ~map:Buffer_problem.monitor_correspondence o.Monitor.computations);
        (List.length o.Monitor.computations, List.length o.Monitor.deadlocks) );
    ( "buffer-csp-1p1c2i",
      fun () ->
        let o = Csp.explore ~por:true ~jobs:1 buffer_csp_program in
        ignore
          (Refine.sat_ok ~strategy:(Strategy.Linearizations (Some 200)) ~jobs:1
             ~problem:(Buffer_problem.spec ~capacity:1)
             ~map:Buffer_problem.csp_correspondence o.Csp.computations);
        (List.length o.Csp.computations, List.length o.Csp.deadlocks) );
    ( "buffer-ada-1p1c2i",
      fun () ->
        let o = Ada.explore ~por:true ~jobs:1 buffer_ada_program in
        ignore
          (Refine.sat_ok ~strategy:(Strategy.Linearizations (Some 200)) ~jobs:1
             ~problem:(Buffer_problem.spec ~capacity:1)
             ~map:Buffer_problem.ada_correspondence o.Ada.computations);
        (List.length o.Ada.computations, List.length o.Ada.deadlocks) );
  ]

let stats_report () =
  let rows =
    List.map
      (fun (name, run) ->
        T.reset ();
        T.enable ();
        let comps, deadlocks = run () in
        T.disable ();
        Printf.printf
          "%-24s explored=%-6d reduced=%-6d runs=%-5d evals=%-6d vhs=%d\n%!"
          name (T.read T.Configs_explored) (T.read T.Configs_reduced)
          (T.read T.Runs_enumerated) (T.read T.Formula_evals)
          (T.read T.Vhs_histories);
        Printf.sprintf
          {|{"workload":"%s","configs_explored":%d,"configs_reduced":%d,"memo_hits":%d,"memo_misses":%d,"sleep_prunes":%d,"computations":%d,"deadlocks":%d,"runs_enumerated":%d,"formula_evals":%d,"vhs_histories":%d}|}
          name (T.read T.Configs_explored) (T.read T.Configs_reduced)
          (T.read T.Memo_hits) (T.read T.Memo_misses) (T.read T.Sleep_prunes)
          comps deadlocks (T.read T.Runs_enumerated) (T.read T.Formula_evals)
          (T.read T.Vhs_histories))
      stats_workloads
  in
  let body = String.concat ",\n  " rows in
  let oc = open_out "BENCH_stats_golden.json" in
  output_string oc
    (Printf.sprintf "{\"schema_version\":%d,\"workloads\":[\n  %s\n]}\n"
       bench_schema_version body);
  close_out oc;
  let oc = open_out "BENCH_stats.json" in
  output_string oc
    (Printf.sprintf "{%s,\"workloads\":[\n  %s\n]}\n" provenance_fields body);
  close_out oc;
  Printf.printf "wrote BENCH_stats.json and BENCH_stats_golden.json\n%!"

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: disabled path must stay under 2%                *)
(* ------------------------------------------------------------------ *)

(* Two measurements per workload: wall time with the sink disabled vs
   enabled, and a microbenchmark of the disabled counter op itself
   (one atomic load + branch). The estimated disabled overhead — events
   recorded per run times the disabled per-op cost, over the disabled
   runtime — is the honest version of the <2% claim: the direct
   disabled-vs-never-instrumented delta is below measurement noise. *)

let telemetry_counters =
  T.
    [
      Configs_explored; Configs_reduced; Memo_hits; Memo_misses; Sleep_prunes;
      Deque_steals; Shard_collisions; Fingerprint_collisions; Footprint_checks;
      Runs_enumerated; Formula_evals; Vhs_histories;
    ]

let telemetry_phases =
  T.[ Interp_step; Canon_key; Seen_table; Run_enum; Formula_eval; Project; Merge ]

let telemetry_overhead_report () =
  T.disable ();
  let ops = 5_000_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to ops do
    T.hit T.Configs_explored
  done;
  let ns_per_disabled_op =
    (Unix.gettimeofday () -. t0) /. float_of_int ops *. 1e9
  in
  let iters = 3 in
  let time1 f =
    let t1 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t1
  in
  let rows =
    List.map
      (fun (name, run) ->
        (* One warm-up, then one counted enabled run to size the event
           stream, then interleaved disabled/enabled timing pairs (block
           timing would put process-lifetime drift entirely on the
           second block and swamp the delta being measured). *)
        T.disable ();
        ignore (run ());
        T.reset ();
        T.enable ();
        ignore (run ());
        T.disable ();
        let counter_events =
          List.fold_left (fun acc c -> acc + T.read c) 0 telemetry_counters
        in
        let span_events =
          2 * List.fold_left (fun acc p -> acc + T.span_count p) 0 telemetry_phases
        in
        let events_per_run = counter_events + span_events in
        let dis = ref 0.0 and en = ref 0.0 in
        for _ = 1 to iters do
          T.disable ();
          dis := !dis +. time1 (fun () -> ignore (run ()));
          T.enable ();
          en := !en +. time1 (fun () -> ignore (run ()))
        done;
        T.disable ();
        let disabled_s = !dis /. float_of_int iters in
        let enabled_s = !en /. float_of_int iters in
        let est_disabled_pct =
          float_of_int events_per_run *. ns_per_disabled_op
          /. (disabled_s *. 1e9) *. 100.0
        in
        let measured_enabled_pct = (enabled_s -. disabled_s) /. disabled_s *. 100.0 in
        Printf.printf
          "%-24s disabled %8.4fs  enabled %8.4fs  %d events/run  est disabled overhead %.3f%%\n%!"
          name disabled_s enabled_s events_per_run est_disabled_pct;
        Printf.sprintf
          {|{"workload":"%s","disabled_s":%.6f,"enabled_s":%.6f,"events_per_run":%d,"est_disabled_overhead_pct":%.4f,"measured_enabled_overhead_pct":%.2f}|}
          name disabled_s enabled_s events_per_run est_disabled_pct
          measured_enabled_pct)
      stats_workloads
  in
  let oc = open_out "BENCH_telemetry.json" in
  output_string oc
    (Printf.sprintf
       "{%s,\"ns_per_disabled_op\":%.3f,\"threshold_pct\":2.0,\"rows\":[\n  %s\n]}\n"
       provenance_fields ns_per_disabled_op
       (String.concat ",\n  " rows));
  close_out oc;
  Printf.printf "disabled counter op: %.2f ns\nwrote BENCH_telemetry.json\n%!"
    ns_per_disabled_op

(* ------------------------------------------------------------------ *)
(* Bitstate capacity: >= 10^7 configurations in fixed heap             *)
(* ------------------------------------------------------------------ *)

(* Two rows land in BENCH_bitstate.json:

   - a synthetic W x H grid DAG — every interior configuration has two
     successors and is reachable along binomial(W+H, W) interleavings,
     so the walk is intractable without a seen set, and an exact table
     at ~100 B/state would need gigabytes where the bitstate table is a
     fixed [16 B * 2^bits]. The row demonstrates the capacity target:
     >= 10^7 distinct configurations admitted through one bounded
     table, with peak RSS recorded;
   - the 4-site database update, driven through the small-step
     interface (configurations only, no computation reconstruction) and
     cut by a config budget — the honest configs/sec figure on a real
     interpreter. *)

let peak_rss_mb () =
  (* VmHWM is Linux-only; degrade to the GC's top heap estimate. *)
  let from_status () =
    try
      let ic = open_in "/proc/self/status" in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            let line = input_line ic in
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d kB"
                (fun kb -> Some (kb / 1024))
            else scan ()
          in
          scan ())
    with _ -> None
  in
  match from_status () with
  | Some mb -> mb
  | None -> (Gc.quick_stat ()).Gc.top_heap_words * (Sys.word_size / 8) / (1024 * 1024)

let bitstate_target = 10_000_000

let bitstate_row ~name ~bits ~max_configs ~max_steps ~key ~moves ~terminated init =
  let table = Bitstate.create ~bits () in
  let res = { Explore.no_resilience with bitstate = Some table } in
  let t0 = Unix.gettimeofday () in
  let r =
    Explore.run ~jobs:1 ~max_configs ~max_steps ~resilience:res ~key ~moves
      ~terminated init
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let explored = r.Explore.explored in
  let configs_per_sec = float_of_int explored /. Float.max 1e-9 wall_s in
  let reason =
    match r.Explore.exhausted with
    | None -> "none"
    | Some reason -> Budget.reason_keyword reason
  in
  let table_mb = Bitstate.capacity table * 16 / (1024 * 1024) in
  let peak_mb = peak_rss_mb () in
  Printf.printf
    "%-22s explored=%-9d %8.2fs  %9.0f configs/s  table=%dMiB occ=%d sat=%b peak-rss=%dMiB  %s\n%!"
    name explored wall_s configs_per_sec table_mb (Bitstate.occupancy table)
    (Bitstate.saturated table) peak_mb reason;
  ( explored,
    Printf.sprintf
      {|{"workload":"%s","bits":%d,"table_mb":%d,"configs_explored":%d,"wall_s":%.3f,"configs_per_sec":%.0f,"occupancy":%d,"saturated":%b,"peak_rss_mb":%d,"reason":"%s"}|}
      name bits table_mb explored wall_s configs_per_sec
      (Bitstate.occupancy table) (Bitstate.saturated table) peak_mb reason )

let bitstate_report () =
  (* 3500 x 3500 grid: 12.25M distinct states, ~73% occupancy of a
     2^24-slot (256 MiB) table — under the 7/8 load cap, so the demo
     measures collision-prone capacity, not saturation. *)
  let w = 3500 in
  let grid_explored, grid_row =
    bitstate_row ~name:"synthetic-grid-3500" ~bits:24
      ~max_configs:(4 * bitstate_target)
      ~max_steps:(4 * w)
      ~key:(fun c -> Explore.Fp (Fingerprint.of_string (string_of_int c)))
      ~moves:(fun c ->
        let i = c / w and j = c mod w in
        (if i + 1 < w then [ c + w ] else [])
        @ (if j + 1 < w then [ c + 1 ] else []))
      ~terminated:(fun c -> c = (w * w) - 1)
      0
  in
  let db4 = Db_update.program ~sites:4 in
  let _, db_row =
    bitstate_row ~name:"db-update-4-sites" ~bits:22 ~max_configs:2_000_000
      ~max_steps:10_000
      ~key:(fun c -> Explore.Fp (Csp.config_fp db4 c))
      ~moves:(fun c -> List.map snd (Csp.config_moves c))
      ~terminated:Csp.config_terminated
      (Csp.initial_config db4)
  in
  let met = grid_explored >= bitstate_target in
  Printf.printf "capacity target: %d configs through a bounded table — %s\n%!"
    bitstate_target
    (if met then "met" else "NOT MET");
  let oc = open_out "BENCH_bitstate.json" in
  output_string oc
    (Printf.sprintf
       "{%s,\"target_configs\":%d,\"target_met\":%b,\"rows\":[\n  %s\n]}\n"
       provenance_fields bitstate_target met
       (String.concat ",\n  " [ grid_row; db_row ]));
  close_out oc;
  Printf.printf "wrote BENCH_bitstate.json\n%!"

(* ------------------------------------------------------------------ *)
(* Differential fuzz throughput: BENCH_fuzz.json                       *)
(* ------------------------------------------------------------------ *)

(* How fast the 26-cell differential oracle chews through random
   instances — the number EXPERIMENTS.md quotes and the knob for sizing
   the CI fuzz leg's --time-budget. Seeds are fixed, so the instance
   streams (and the zero-disagreements assertion) are reproducible; only
   the wall numbers vary by host. *)
let fuzz_report () =
  let row seed iters =
    let o = Fuzz.Driver.run ~seed ~iters () in
    (match o.Fuzz.Driver.o_failure with
    | None -> ()
    | Some f ->
        Printf.eprintf "fuzz bench found a real disagreement (seed %d):\n  %s\n%!"
          seed
          (Fuzz.Case.to_string f.Fuzz.Driver.f_shrunk);
        exit 1);
    let per_instance = o.Fuzz.Driver.o_elapsed /. float_of_int o.Fuzz.Driver.o_ran in
    Printf.printf
      "fuzz seed=%d: %d instances x %d cells in %.2fs (%.1f inst/s, %.0f configs/s)\n%!"
      seed o.Fuzz.Driver.o_ran o.Fuzz.Driver.o_cells o.Fuzz.Driver.o_elapsed
      (1. /. per_instance)
      (float_of_int o.Fuzz.Driver.o_explored /. o.Fuzz.Driver.o_elapsed);
    Printf.sprintf
      {|{"seed":%d,"iters":%d,"cells":%d,"explored":%d,"disagreements":0,"wall_s":%.6f,"instances_per_sec":%.2f,"configs_per_sec":%.1f}|}
      seed o.Fuzz.Driver.o_ran o.Fuzz.Driver.o_cells o.Fuzz.Driver.o_explored
      o.Fuzz.Driver.o_elapsed
      (float_of_int o.Fuzz.Driver.o_ran /. o.Fuzz.Driver.o_elapsed)
      (float_of_int o.Fuzz.Driver.o_explored /. o.Fuzz.Driver.o_elapsed)
  in
  let r42 = row 42 100 in
  let r7 = row 7 100 in
  let rows = [ r42; r7 ] in
  let oc = open_out "BENCH_fuzz.json" in
  output_string oc
    (Printf.sprintf "{%s,\"rows\":[\n  %s\n]}\n" provenance_fields
       (String.concat ",\n  " rows));
  close_out oc;
  Printf.printf "wrote BENCH_fuzz.json\n%!"

(* ------------------------------------------------------------------ *)
(* Checking-daemon round trips: BENCH_serve.json                       *)
(* ------------------------------------------------------------------ *)

(* The verdict cache's reason to exist, measured: a cached answer must
   be at least 10x faster than computing the verdict fresh (the gate
   CI's bench job reads), and a stampede of identical concurrent
   requests must collapse onto one computation. The daemon runs
   in-process over a real Unix socket, so the hit numbers include the
   full wire round trip — connect, frame, look up, read back. *)
let serve_report () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gem-bench-%d.sock" (Unix.getpid ()))
  in
  let handler = Handler.create ~cache_size:64 () in
  let server = Server.create ~socket () in
  let thread =
    Os_thread.create (fun () -> Server.run server ~handler:(Handler.handle handler)) ()
  in
  let request line =
    match Client.request ~socket line with
    | Ok r when r.Client.error = None -> r
    | Ok r ->
        failwith
          (Printf.sprintf "daemon error for %S: %s" line
             (Option.value ~default:"?" r.Client.error))
    | Error e -> failwith (Printf.sprintf "transport error for %S: %s" line e)
  in
  let timed line =
    let t0 = Unix.gettimeofday () in
    let r = request line in
    ((Unix.gettimeofday () -. t0) *. 1000., r)
  in
  let provenance r =
    Option.value ~default:"?" (Client.field_string r.Client.header "cache")
  in
  let hit_samples = 100 in
  let row (name, line) =
    let cold_ms, cold = timed line in
    if provenance cold <> "miss" then
      failwith (name ^ ": expected a cold miss — stale daemon state?");
    let samples =
      List.init hit_samples (fun _ ->
          let ms, r = timed line in
          if provenance r <> "hit" then failwith (name ^ ": expected a hit");
          ms)
    in
    let hit_ms = List.nth (List.sort compare samples) (hit_samples / 2) in
    let speedup = cold_ms /. hit_ms in
    Printf.printf "serve %-12s cold %9.2f ms   hit %6.3f ms   speedup %8.1fx\n%!"
      name cold_ms hit_ms speedup;
    ( speedup,
      Printf.sprintf
        {|{"workload":"%s","request":"%s","cold_ms":%.3f,"hit_ms":%.3f,"speedup":%.1f}|}
        name line cold_ms hit_ms speedup )
  in
  let rows =
    List.map row
      [
        ("rw-2r1w", "check rw readers=2 writers=1");
        ("buffer-c2", "check buffer capacity=2 producers=1 consumers=1 items=3");
        ("db-3-sites", "check db sites=3");
      ]
  in
  (* Stampede: concurrent identical requests against a cold key — all
     but one answered without computing (coalesced while in flight, or a
     hit if they arrive after completion). *)
  let stampede = 8 in
  let line = "check rwd readers=1 writers=1" in
  let provs = Array.make stampede "" in
  let threads =
    List.init stampede (fun i ->
        Os_thread.create (fun () -> provs.(i) <- provenance (request line)) ())
  in
  List.iter Os_thread.join threads;
  let count p = Array.fold_left (fun n q -> if q = p then n + 1 else n) 0 provs in
  Printf.printf
    "serve stampede: %d concurrent duplicates -> %d computed, %d coalesced, %d hits\n%!"
    stampede (count "miss") (count "coalesced") (count "hit");
  Server.request_stop server;
  Os_thread.join thread;
  let met = List.for_all (fun (s, _) -> s >= 10.) rows in
  Printf.printf "cache speedup target: >=10x on every workload — %s\n%!"
    (if met then "met" else "NOT MET");
  let oc = open_out "BENCH_serve.json" in
  output_string oc
    (Printf.sprintf
       "{%s,\"hit_samples\":%d,\"speedup_target\":10,\"target_met\":%b,\"stampede\":{\"requests\":%d,\"computed\":%d,\"shared\":%d},\"rows\":[\n  %s\n]}\n"
       provenance_fields hit_samples met stampede (count "miss")
       (count "coalesced" + count "hit")
       (String.concat ",\n  " (List.map snd rows)));
  close_out oc;
  Printf.printf "wrote BENCH_serve.json\n%!"

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run_bechamel () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  Printf.printf "%-28s %16s %10s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let time_ns =
            match Analyze.OLS.estimates ols_result with
            | Some [ estimate ] -> estimate
            | Some _ | None -> nan
          in
          let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols_result) in
          let pretty =
            if time_ns >= 1e9 then Printf.sprintf "%10.3f s " (time_ns /. 1e9)
            else if time_ns >= 1e6 then Printf.sprintf "%9.3f ms " (time_ns /. 1e6)
            else if time_ns >= 1e3 then Printf.sprintf "%9.3f us " (time_ns /. 1e3)
            else Printf.sprintf "%9.1f ns " time_ns
          in
          Printf.printf "%-28s %16s %10.4f\n%!" name pretty r2)
        analyzed)
    tests

let () =
  let has flag = Array.exists (String.equal flag) Sys.argv in
  if has "--telemetry-only" then telemetry_overhead_report ()
  else if has "--stats-only" || (has "--quick" && has "--stats") then
    stats_report ()
  else if has "--parallel-only" then parallel_report ()
  else if has "--por-only" then por_report ()
  else if has "--dpor-only" then dpor_report ()
  else if has "--keys-only" then keys_report ()
  else if has "--bitstate-only" then bitstate_report ()
  else if has "--budget-only" then budget_overhead_report ()
  else if has "--fuzz-only" then fuzz_report ()
  else if has "--serve-only" then serve_report ()
  else begin
    run_bechamel ();
    budget_overhead_report ();
    por_report ();
    dpor_report ();
    parallel_report ();
    keys_report ();
    stats_report ();
    telemetry_overhead_report ();
    bitstate_report ();
    fuzz_report ();
    serve_report ()
  end
